//===- support/Telemetry.cpp - Self-instrumentation layer -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/SignalSafe.h"
#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>

using namespace lima;
using namespace lima::telemetry;

std::atomic<bool> telemetry::detail::Enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's event buffer.  The owning thread appends under Mutex,
/// which is uncontended except while collect() drains, so the enabled
/// hot path never blocks on another recording thread.
struct ThreadBuffer {
  std::mutex Mutex;
  std::vector<SpanEvent> Events;
};

/// A completed pipeline-stage scope (wall time on the recording thread).
struct StageRecord {
  uint32_t Name;
  uint64_t StartNs;
  uint64_t DurNs;
};

/// Process-wide registry.  Registration and collection lock Mutex; the
/// recording fast path only touches the calling thread's buffer.
struct Registry {
  std::mutex Mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  std::vector<std::string> Names;
  std::vector<StageRecord> Stages;
  /// Stable-address counter storage (references escape to call sites).
  std::deque<Counter> Counters;
};

/// Session epoch in steady-clock nanoseconds.  Atomic so nowNs() stays a
/// single relaxed load on the recording hot path; only reset() writes it.
int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}
std::atomic<int64_t> EpochNs{steadyNowNs()};

Registry &registry() {
  static Registry R;
  return R;
}

std::atomic<unsigned> MaxWorker{0};
std::atomic<uint32_t> CurrentStage{InvalidName};

//===----------------------------------------------------------------------===//
// Flight recorder ring
//===----------------------------------------------------------------------===//

/// One ring slot.  Every field is a relaxed atomic: writers never lock,
/// readers validate the sequence word before and after copying the
/// payload and drop slots a concurrent writer was filling.  Seq holds
/// 2*claim+1 while the payload is being written and 2*claim+2 once it
/// is stable (0 = never written).
struct FlightSlot {
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> NameStage{0}; ///< Name << 32 | Stage.
  std::atomic<uint64_t> Worker{0};
  std::atomic<uint64_t> StartNs{0};
  std::atomic<uint64_t> DurNs{0};
  std::atomic<uint64_t> WaitNs{0};
};

struct FlightRing {
  std::unique_ptr<FlightSlot[]> Slots;
  size_t Mask = 0;
  std::atomic<uint64_t> Head{0};
};

/// The active ring, raw-pointer for the lock-free record path.  Retired
/// rings (tests reconfigure capacities) are parked in RetiredRings so a
/// racing writer holding an old pointer never touches freed memory;
/// they are reclaimed at process exit, which keeps LeakSanitizer quiet.
std::atomic<FlightRing *> ActiveRing{nullptr};
std::mutex FlightMutex;
std::vector<std::unique_ptr<FlightRing>> &retiredRings() {
  static std::vector<std::unique_ptr<FlightRing>> Rings;
  return Rings;
}

std::atomic<bool> RingOnly{false};

/// Crash name table: a bounded, append-only copy of interned names in
/// plain chars, readable from a signal handler without locking the
/// registry (whose std::strings may be mid-mutation when we crash).
constexpr uint32_t CrashNameCap = 512;
constexpr size_t CrashNameLen = 48;
char CrashNames[CrashNameCap][CrashNameLen];
std::atomic<uint32_t> CrashNameCount{0};

void flightRecord(const SpanEvent &E) {
  FlightRing *Ring = ActiveRing.load(std::memory_order_acquire);
  if (!Ring)
    return;
  uint64_t Claim = Ring->Head.fetch_add(1, std::memory_order_relaxed);
  FlightSlot &Slot = Ring->Slots[Claim & Ring->Mask];
  // Fence-free seqlock (GCC's TSan cannot instrument
  // atomic_thread_fence): release payload stores keep the odd Seq
  // store ordered before them, so a reader that still sees the old
  // even Seq after copying cannot have read a half-written payload.
  Slot.Seq.store(Claim * 2 + 1, std::memory_order_release);
  Slot.NameStage.store((static_cast<uint64_t>(E.Name) << 32) | E.Stage,
                       std::memory_order_release);
  Slot.Worker.store(E.Worker, std::memory_order_release);
  Slot.StartNs.store(E.StartNs, std::memory_order_release);
  Slot.DurNs.store(E.DurNs, std::memory_order_release);
  Slot.WaitNs.store(E.QueueWaitNs, std::memory_order_release);
  Slot.Seq.store(Claim * 2 + 2, std::memory_order_release);
}

thread_local unsigned TlsWorker = 0;
thread_local std::shared_ptr<ThreadBuffer> TlsBuffer;

ThreadBuffer &localBuffer() {
  if (!TlsBuffer) {
    TlsBuffer = std::make_shared<ThreadBuffer>();
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Buffers.push_back(TlsBuffer);
  }
  return *TlsBuffer;
}

double toMs(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

} // namespace

void telemetry::setEnabled(bool On) {
#if LIMA_TELEMETRY
  detail::Enabled.store(On, std::memory_order_relaxed);
#else
  (void)On;
#endif
}

void telemetry::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const std::shared_ptr<ThreadBuffer> &Buffer : R.Buffers) {
    std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
    Buffer->Events.clear();
  }
  R.Stages.clear();
  for (Counter &C : R.Counters)
    C.zero();
  EpochNs.store(steadyNowNs(), std::memory_order_relaxed);
  CurrentStage.store(InvalidName, std::memory_order_relaxed);
}

uint64_t telemetry::nowNs() {
  int64_t Delta = steadyNowNs() - EpochNs.load(std::memory_order_relaxed);
  return Delta > 0 ? static_cast<uint64_t>(Delta) : 0;
}

uint32_t telemetry::internName(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (uint32_t Id = 0; Id != R.Names.size(); ++Id)
    if (R.Names[Id] == Name)
      return Id;
  R.Names.emplace_back(Name);
  uint32_t Id = static_cast<uint32_t>(R.Names.size() - 1);
  // Mirror into the crash name table (fixed chars, readable from a
  // signal handler).  Names beyond the cap dump as their raw id.
  if (Id < CrashNameCap) {
    size_t N = std::min(Name.size(), CrashNameLen - 1);
    std::memcpy(CrashNames[Id], Name.data(), N);
    CrashNames[Id][N] = '\0';
    CrashNameCount.store(Id + 1, std::memory_order_release);
  }
  return Id;
}

unsigned telemetry::workerId() { return TlsWorker; }

void telemetry::setWorkerId(unsigned Worker) {
  TlsWorker = Worker;
  unsigned Seen = MaxWorker.load(std::memory_order_relaxed);
  while (Worker > Seen &&
         !MaxWorker.compare_exchange_weak(Seen, Worker,
                                          std::memory_order_relaxed)) {
  }
}

unsigned telemetry::numWorkers() {
  return MaxWorker.load(std::memory_order_relaxed) + 1;
}

uint32_t telemetry::currentStage() {
  return CurrentStage.load(std::memory_order_relaxed);
}

void telemetry::recordSpan(uint32_t Name, uint32_t Stage, uint64_t StartNs,
                           uint64_t DurNs) {
  SpanEvent E{Name, Stage, TlsWorker, StartNs, DurNs, 0};
  flightRecord(E);
  if (RingOnly.load(std::memory_order_relaxed))
    return;
  ThreadBuffer &Buffer = localBuffer();
  std::lock_guard<std::mutex> Lock(Buffer.Mutex);
  Buffer.Events.push_back(E);
}

void telemetry::recordTask(uint32_t Stage, uint64_t StartNs, uint64_t RunNs,
                           uint64_t WaitNs) {
  static const uint32_t TaskName = internName("pool.task");
  SpanEvent E{TaskName, Stage, TlsWorker, StartNs, RunNs, WaitNs};
  flightRecord(E);
  if (RingOnly.load(std::memory_order_relaxed))
    return;
  ThreadBuffer &Buffer = localBuffer();
  std::lock_guard<std::mutex> Lock(Buffer.Mutex);
  Buffer.Events.push_back(E);
}

void telemetry::enableFlightRecorder(size_t Capacity) {
  std::lock_guard<std::mutex> Lock(FlightMutex);
  FlightRing *Old = ActiveRing.load(std::memory_order_acquire);
  if (Capacity == 0) {
    ActiveRing.store(nullptr, std::memory_order_release);
    (void)Old; // stays parked in retiredRings()
    return;
  }
  size_t Pow2 = 1;
  while (Pow2 < Capacity)
    Pow2 <<= 1;
  auto Ring = std::make_unique<FlightRing>();
  Ring->Slots = std::make_unique<FlightSlot[]>(Pow2);
  Ring->Mask = Pow2 - 1;
  ActiveRing.store(Ring.get(), std::memory_order_release);
  retiredRings().push_back(std::move(Ring));
}

bool telemetry::flightRecorderEnabled() {
  return ActiveRing.load(std::memory_order_acquire) != nullptr;
}

void telemetry::setRingOnly(bool On) {
  RingOnly.store(On, std::memory_order_relaxed);
}

FlightSnapshot telemetry::flightSnapshot() {
  FlightSnapshot S;
  FlightRing *Ring = ActiveRing.load(std::memory_order_acquire);
  if (!Ring)
    return S;
  uint64_t Head = Ring->Head.load(std::memory_order_acquire);
  S.TotalRecorded = Head;
  size_t Cap = Ring->Mask + 1;
  uint64_t First = Head > Cap ? Head - Cap : 0;
  S.Events.reserve(static_cast<size_t>(Head - First));
  for (uint64_t Claim = First; Claim != Head; ++Claim) {
    FlightSlot &Slot = Ring->Slots[Claim & Ring->Mask];
    uint64_t Before = Slot.Seq.load(std::memory_order_acquire);
    if (Before != Claim * 2 + 2)
      continue; // Torn by a newer writer, or never completed.
    // Acquire payload loads pair with the writer's release stores and
    // keep the Seq re-validation below ordered after the copy.
    uint64_t NameStage = Slot.NameStage.load(std::memory_order_acquire);
    SpanEvent E;
    E.Name = static_cast<uint32_t>(NameStage >> 32);
    E.Stage = static_cast<uint32_t>(NameStage);
    E.Worker =
        static_cast<uint32_t>(Slot.Worker.load(std::memory_order_acquire));
    E.StartNs = Slot.StartNs.load(std::memory_order_acquire);
    E.DurNs = Slot.DurNs.load(std::memory_order_acquire);
    E.QueueWaitNs = Slot.WaitNs.load(std::memory_order_acquire);
    if (Slot.Seq.load(std::memory_order_acquire) != Before)
      continue; // Overwritten while we copied.
    S.Events.push_back(E);
  }
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    S.Names = R.Names;
  }
  return S;
}

void telemetry::crashWriteSpans(int Fd) {
  using namespace sigsafe;
  FlightRing *Ring = ActiveRing.load(std::memory_order_acquire);
  if (!Ring) {
    writeStr(Fd, "(flight recorder not enabled)\n");
    return;
  }
  uint64_t Head = Ring->Head.load(std::memory_order_relaxed);
  size_t Cap = Ring->Mask + 1;
  uint64_t First = Head > Cap ? Head - Cap : 0;
  uint32_t NamedCount = CrashNameCount.load(std::memory_order_acquire);
  writeStr(Fd, "spans recorded: ");
  writeUint(Fd, Head);
  writeStr(Fd, ", retained: ");
  writeUint(Fd, Head - First);
  writeStr(Fd, " (oldest first)\n");
  for (uint64_t Claim = First; Claim != Head; ++Claim) {
    FlightSlot &Slot = Ring->Slots[Claim & Ring->Mask];
    if (Slot.Seq.load(std::memory_order_relaxed) != Claim * 2 + 2)
      continue;
    uint64_t NameStage = Slot.NameStage.load(std::memory_order_relaxed);
    uint32_t Name = static_cast<uint32_t>(NameStage >> 32);
    uint32_t Stage = static_cast<uint32_t>(NameStage);
    writeStr(Fd, "span ");
    if (Name < NamedCount) {
      writeStr(Fd, CrashNames[Name]);
    } else {
      writeStr(Fd, "name#");
      writeUint(Fd, Name);
    }
    writeStr(Fd, " stage=");
    if (Stage == InvalidName)
      writeStr(Fd, "(none)");
    else if (Stage < NamedCount)
      writeStr(Fd, CrashNames[Stage]);
    else
      writeUint(Fd, Stage);
    writeStr(Fd, " worker=");
    writeUint(Fd, Slot.Worker.load(std::memory_order_relaxed));
    writeStr(Fd, " start_ns=");
    writeUint(Fd, Slot.StartNs.load(std::memory_order_relaxed));
    writeStr(Fd, " dur_ns=");
    writeUint(Fd, Slot.DurNs.load(std::memory_order_relaxed));
    uint64_t Wait = Slot.WaitNs.load(std::memory_order_relaxed);
    if (Wait != 0) {
      writeStr(Fd, " wait_ns=");
      writeUint(Fd, Wait);
    }
    writeStr(Fd, "\n");
  }
}

Counter &telemetry::counter(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (Counter &C : R.Counters)
    if (C.name() == Name)
      return C;
  R.Counters.emplace_back(std::string(Name));
  return R.Counters.back();
}

ScopedStage::ScopedStage(uint32_t Name) {
  if (!enabled())
    return;
  Active_ = true;
  Name_ = Name;
  Prev_ = CurrentStage.load(std::memory_order_relaxed);
  StartNs_ = nowNs();
  CurrentStage.store(Name, std::memory_order_relaxed);
}

ScopedStage::~ScopedStage() {
  if (!Active_)
    return;
  CurrentStage.store(Prev_, std::memory_order_relaxed);
  uint64_t DurNs = nowNs() - StartNs_;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Stages.push_back({Name_, StartNs_, DurNs});
}

Snapshot telemetry::collect() {
  Snapshot S;
  std::vector<StageRecord> StageRecords;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    for (const std::shared_ptr<ThreadBuffer> &Buffer : R.Buffers) {
      std::lock_guard<std::mutex> BufferLock(Buffer->Mutex);
      S.Events.insert(S.Events.end(), Buffer->Events.begin(),
                      Buffer->Events.end());
      Buffer->Events.clear();
    }
    S.Names = R.Names;
    StageRecords = R.Stages;
    R.Stages.clear();
    for (const Counter &C : R.Counters)
      if (C.value() != 0)
        S.Counters.push_back({C.name(), C.value()});
  }
  S.NumWorkers = numWorkers();

  std::sort(S.Events.begin(), S.Events.end(),
            [](const SpanEvent &A, const SpanEvent &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Worker != B.Worker)
                return A.Worker < B.Worker;
              return A.Name < B.Name;
            });
  std::sort(S.Counters.begin(), S.Counters.end(),
            [](const CounterValue &A, const CounterValue &B) {
              return A.Name < B.Name;
            });

  // Per-name span aggregates.
  std::vector<SpanStats> ByName(S.Names.size());
  uint64_t MaxEndNs = 0;
  for (const SpanEvent &E : S.Events) {
    MaxEndNs = std::max(MaxEndNs, E.StartNs + E.DurNs);
    if (E.Name >= ByName.size())
      continue;
    SpanStats &Stats = ByName[E.Name];
    double Ms = toMs(E.DurNs);
    if (Stats.Count == 0) {
      Stats.Name = S.Names[E.Name];
      Stats.MinMs = Ms;
      Stats.MaxMs = Ms;
      Stats.WorkerBusyMs.assign(S.NumWorkers, 0.0);
    }
    ++Stats.Count;
    Stats.TotalMs += Ms;
    Stats.MinMs = std::min(Stats.MinMs, Ms);
    Stats.MaxMs = std::max(Stats.MaxMs, Ms);
    if (E.Worker < Stats.WorkerBusyMs.size())
      Stats.WorkerBusyMs[E.Worker] += Ms;
  }
  for (SpanStats &Stats : ByName)
    if (Stats.Count != 0) {
      Stats.MeanMs = Stats.TotalMs / static_cast<double>(Stats.Count);
      S.Spans.push_back(std::move(Stats));
    }
  std::stable_sort(S.Spans.begin(), S.Spans.end(),
                   [](const SpanStats &A, const SpanStats &B) {
                     return A.TotalMs > B.TotalMs;
                   });

  // Stages in begin order, duplicates merged (e.g. two analyze calls).
  std::sort(StageRecords.begin(), StageRecords.end(),
            [](const StageRecord &A, const StageRecord &B) {
              return A.StartNs < B.StartNs;
            });
  std::vector<size_t> StageIndexOfName(S.Names.size(), SIZE_MAX);
  for (const StageRecord &Record : StageRecords) {
    MaxEndNs = std::max(MaxEndNs, Record.StartNs + Record.DurNs);
    if (Record.Name >= StageIndexOfName.size())
      continue;
    size_t &Index = StageIndexOfName[Record.Name];
    if (Index == SIZE_MAX) {
      Index = S.Stages.size();
      S.Stages.push_back({});
      StageStats &Stats = S.Stages.back();
      Stats.Name = S.nameOf(Record.Name);
      Stats.StartNs = Record.StartNs;
      Stats.WorkerComputeMs.assign(S.NumWorkers, 0.0);
      Stats.WorkerQueueWaitMs.assign(S.NumWorkers, 0.0);
    }
    S.Stages[Index].WallMs += toMs(Record.DurNs);
  }

  // Attribute busy time to (stage, worker) as the interval *union* of
  // every event recorded there — spans nest inside pool tasks (and each
  // other), so summing durations would double-count; the union is the
  // instrumented-busy coverage of the stage's wall time.  Queue wait is
  // carried by task events only and those never overlap on one worker,
  // so a plain sum is exact.  Events are already sorted by StartNs, so
  // the union is a linear sweep with one open interval per slot.
  struct OpenInterval {
    uint64_t StartNs = 0;
    uint64_t EndNs = 0;
  };
  std::vector<OpenInterval> Open(S.Stages.size() * S.NumWorkers);
  auto slotOf = [&](const SpanEvent &E) -> OpenInterval * {
    if (E.Stage == InvalidName || E.Stage >= StageIndexOfName.size() ||
        StageIndexOfName[E.Stage] == SIZE_MAX || E.Worker >= S.NumWorkers)
      return nullptr;
    return &Open[StageIndexOfName[E.Stage] * S.NumWorkers + E.Worker];
  };
  auto flush = [&](size_t Slot) {
    OpenInterval &I = Open[Slot];
    if (I.EndNs > I.StartNs)
      S.Stages[Slot / S.NumWorkers]
          .WorkerComputeMs[Slot % S.NumWorkers] += toMs(I.EndNs - I.StartNs);
    I = OpenInterval{};
  };
  for (const SpanEvent &E : S.Events) {
    OpenInterval *I = slotOf(E);
    if (!I)
      continue;
    StageStats &Stats = S.Stages[StageIndexOfName[E.Stage]];
    Stats.WorkerQueueWaitMs[E.Worker] += toMs(E.QueueWaitNs);
    uint64_t EndNs = E.StartNs + E.DurNs;
    if (I->EndNs == 0 && I->StartNs == 0) {
      *I = {E.StartNs, EndNs};
    } else if (E.StartNs > I->EndNs) {
      flush(static_cast<size_t>(I - Open.data()));
      *I = {E.StartNs, EndNs};
    } else {
      I->EndNs = std::max(I->EndNs, EndNs);
    }
  }
  for (size_t Slot = 0; Slot != Open.size(); ++Slot)
    flush(Slot);

  S.SessionWallMs = toMs(MaxEndNs);
  return S;
}
