//===- support/RNG.cpp - Deterministic random number generation -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"
#include <cmath>

using namespace lima;

static uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t lima::splitSeed(uint64_t Seed, uint64_t Stream) {
  uint64_t State = Stream;
  return Seed ^ splitMix64(State);
}

static uint64_t rotl64(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

RNG::RNG(uint64_t Seed) {
  uint64_t Mix = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(Mix);
}

uint64_t RNG::next() {
  uint64_t Result = rotl64(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl64(State[3], 45);
  return Result;
}

double RNG::uniform() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RNG::uniformIn(double Lo, double Hi) {
  assert(Lo <= Hi && "empty interval");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t RNG::uniformInt(uint64_t Bound) {
  assert(Bound > 0 && "uniformInt bound must be positive");
  // Rejection sampling over the largest multiple of Bound.
  uint64_t Threshold = (0ULL - Bound) % Bound;
  while (true) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

double RNG::normal() {
  if (HasCachedNormal) {
    HasCachedNormal = false;
    return CachedNormal;
  }
  // Box-Muller transform; uniform() can return 0, so flip to (0, 1].
  double U1 = 1.0 - uniform();
  double U2 = uniform();
  double Radius = std::sqrt(-2.0 * std::log(U1));
  double Angle = 2.0 * M_PI * U2;
  CachedNormal = Radius * std::sin(Angle);
  HasCachedNormal = true;
  return Radius * std::cos(Angle);
}

double RNG::exponential(double Rate) {
  assert(Rate > 0 && "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / Rate;
}

double RNG::logNormal(double Mu, double Sigma) {
  return std::exp(Mu + Sigma * normal());
}
