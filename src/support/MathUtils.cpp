//===- support/MathUtils.cpp - Numerical helpers --------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"

using namespace lima;

double lima::sumKahan(const std::vector<double> &Values) {
  KahanSum Sum;
  for (double Value : Values)
    Sum.add(Value);
  return Sum.total();
}
