//===- support/HttpServer.cpp - Embedded HTTP/1.1 status server -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/HttpServer.h"
#include "support/Metrics.h"
#include "support/MetricsExport.h"
#include "support/Retry.h"
#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace lima;
using namespace lima::http;

//===----------------------------------------------------------------------===//
// Small pieces
//===----------------------------------------------------------------------===//

std::string_view http::statusReason(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 204:
    return "No Content";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 413:
    return "Content Too Large";
  case 414:
    return "URI Too Long";
  case 431:
    return "Request Header Fields Too Large";
  case 500:
    return "Internal Server Error";
  case 503:
    return "Service Unavailable";
  case 505:
    return "HTTP Version Not Supported";
  default:
    return Status >= 200 && Status < 300 ? "OK" : "Error";
  }
}

static bool equalsIgnoreCase(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

const std::string *Request::header(std::string_view Name) const {
  for (const auto &[Key, Value] : Headers)
    if (equalsIgnoreCase(Key, Name))
      return &Value;
  return nullptr;
}

std::string Request::queryParam(std::string_view Name) const {
  std::string_view Rest = Query;
  while (!Rest.empty()) {
    size_t Amp = Rest.find('&');
    std::string_view Pair =
        Amp == std::string_view::npos ? Rest : Rest.substr(0, Amp);
    size_t Eq = Pair.find('=');
    if (Eq != std::string_view::npos && Pair.substr(0, Eq) == Name)
      return std::string(Pair.substr(Eq + 1));
    if (Eq == std::string_view::npos && Pair == Name)
      return std::string(); // bare "?flag" — present but valueless
    if (Amp == std::string_view::npos)
      break;
    Rest.remove_prefix(Amp + 1);
  }
  return std::string();
}

//===----------------------------------------------------------------------===//
// StreamHub
//===----------------------------------------------------------------------===//

StreamHub::StreamHub(size_t MaxPendingBytes)
    : MaxPendingBytes(MaxPendingBytes) {}

void StreamHub::publish(std::string_view Frame) {
  Published.fetch_add(1, std::memory_order_relaxed);
  // Collect the wakers under the lock, run them outside it: a waker is
  // a pipe write, but holding Mu across foreign code invites deadlock.
  std::vector<std::function<void()>> Wakers;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (Subscriber &S : Subs) {
      if (S.Pending.size() + Frame.size() > MaxPendingBytes) {
        Dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      S.Pending.append(Frame);
      if (S.Waker)
        Wakers.push_back(S.Waker);
    }
  }
  for (const auto &Wake : Wakers)
    Wake();
}

uint64_t StreamHub::subscribe(std::function<void()> Waker) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Id = NextId++;
  Subs.push_back(Subscriber{Id, std::string(), std::move(Waker)});
  NumSubs.store(Subs.size(), std::memory_order_relaxed);
  return Id;
}

bool StreamHub::drain(uint64_t Id, std::string &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Subscriber &S : Subs)
    if (S.Id == Id) {
      Out = std::move(S.Pending);
      S.Pending.clear();
      return true;
    }
  return false;
}

void StreamHub::unsubscribe(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I != Subs.size(); ++I)
    if (Subs[I].Id == Id) {
      Subs.erase(Subs.begin() + static_cast<ptrdiff_t>(I));
      break;
    }
  NumSubs.store(Subs.size(), std::memory_order_relaxed);
}

Expected<std::pair<std::string, uint16_t>>
http::parseAddress(const std::string &Address) {
  if (Address.empty())
    return makeStringError("empty listen address");
  std::string Host = "127.0.0.1";
  std::string PortStr = Address;
  size_t Colon = Address.rfind(':');
  if (Colon != std::string::npos) {
    if (Colon != 0)
      Host = Address.substr(0, Colon);
    PortStr = Address.substr(Colon + 1);
  }
  if (Host == "localhost")
    Host = "127.0.0.1";
  in_addr Parsed;
  if (inet_pton(AF_INET, Host.c_str(), &Parsed) != 1)
    return makeStringError("bad listen host '%s' (numeric IPv4 only)",
                           Host.c_str());
  if (PortStr.empty() ||
      PortStr.find_first_not_of("0123456789") != std::string::npos)
    return makeStringError("bad listen port '%s'", PortStr.c_str());
  unsigned long Port = std::strtoul(PortStr.c_str(), nullptr, 10);
  if (Port > 65535)
    return makeStringError("listen port %lu out of range", Port);
  return std::make_pair(Host, static_cast<uint16_t>(Port));
}

namespace {

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// A parse attempt over one connection's input buffer.
enum class HeadState { NeedMore, Ready, Fail };

} // namespace

//===----------------------------------------------------------------------===//
// Impl
//===----------------------------------------------------------------------===//

struct HttpServer::Impl {
  ServerLimits Limits;
  std::vector<std::pair<std::string, Handler>> Handlers;
  std::vector<std::pair<std::string, Handler>> PrefixHandlers;

  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint16_t> BoundPort{0};
  std::string Host;

  int ListenFd = -1;
  int WakeRead = -1;
  int WakeWrite = -1;

  struct Conn {
    int Fd = -1;
    std::string In;
    std::string Out;
    size_t OutOff = 0;
    uint64_t Served = 0;
    uint64_t LastActiveMs = 0;
    bool CloseAfterWrite = false;
    /// Non-null once a streaming response was dispatched: the
    /// connection is dedicated to pushing this hub's frames.
    std::shared_ptr<StreamHub> Hub;
    uint64_t SubId = 0;
    bool Chunked = false;
  };
  std::vector<Conn> Conns;

  ~Impl() { closeFds(); }

  void closeFds() {
    for (Conn &C : Conns) {
      if (C.Hub)
        C.Hub->unsubscribe(C.SubId);
      if (C.Fd >= 0)
        ::close(C.Fd);
    }
    Conns.clear();
    for (int *Fd : {&ListenFd, &WakeRead, &WakeWrite})
      if (*Fd >= 0) {
        ::close(*Fd);
        *Fd = -1;
      }
  }

  /// The handler for \p Path plus the mount string it matched (the
  /// bounded-cardinality path label for self-metrics).  Exact mounts
  /// win; among prefixes the longest match wins.
  std::pair<const Handler *, std::string_view>
  findHandler(const std::string &Path) const {
    for (const auto &[Mount, H] : Handlers)
      if (Mount == Path)
        return {&H, Mount};
    const Handler *Best = nullptr;
    std::string_view BestMount;
    for (const auto &[Prefix, H] : PrefixHandlers)
      if (Path.compare(0, Prefix.size(), Prefix) == 0 &&
          (!Best || Prefix.size() > BestMount.size())) {
        Best = &H;
        BestMount = Prefix;
      }
    return {Best, BestMount};
  }

  /// Self-metrics: one labeled count per answered request.  The path
  /// label is always a mount string or a fixed sentinel, never the raw
  /// request target, so cardinality stays bounded under hostile load.
  static void recordRequest(std::string_view PathLabel, int Status) {
#if LIMA_TELEMETRY
    LIMA_METRIC_COUNT_DYN("lima.http.requests_total{path=\"" +
                              metrics::escapeLabelValue(PathLabel) +
                              "\",status=\"" + std::to_string(Status) + "\"}",
                          1);
#else
    (void)PathLabel;
    (void)Status;
#endif
  }

  /// Serializes \p R onto the connection's output buffer.  \p Head
  /// suppresses the body bytes (HEAD), \p KeepAlive picks the
  /// Connection header.
  void enqueue(Conn &C, const Response &R, bool Head, bool KeepAlive) {
    std::string &Out = C.Out;
    Out += "HTTP/1.1 ";
    Out += std::to_string(R.Status);
    Out += ' ';
    Out += statusReason(R.Status);
    Out += "\r\nServer: lima\r\nContent-Type: ";
    Out += R.ContentType;
    Out += "\r\nContent-Length: ";
    Out += std::to_string(R.Body.size());
    if (R.Status == 405)
      Out += "\r\nAllow: GET, HEAD";
    Out += KeepAlive ? "\r\nConnection: keep-alive"
                     : "\r\nConnection: close";
    Out += "\r\n\r\n";
    if (!Head)
      Out += R.Body;
    if (!KeepAlive)
      C.CloseAfterWrite = true;
    Requests.fetch_add(1, std::memory_order_relaxed);
  }

  /// 4xx/5xx shortcut: always closes the connection afterwards (the
  /// input buffer may be unframed garbage, so resync is impossible).
  void enqueueError(Conn &C, int Status, std::string_view Detail) {
    Response R = Response::text(Status, std::string(statusReason(Status)) +
                                            (Detail.empty() ? "" : ": ") +
                                            std::string(Detail) + "\n");
    enqueue(C, R, /*Head=*/false, /*KeepAlive=*/false);
    recordRequest("<bad-request>", Status);
  }

  /// Appends \p Data as stream payload: chunk-framed on HTTP/1.1,
  /// raw bytes on an HTTP/1.0 close-delimited stream.
  static void appendStreamPayload(Conn &C, std::string_view Data) {
    if (Data.empty())
      return;
    if (C.Chunked) {
      char Hex[2 * sizeof(size_t) + 1];
      std::snprintf(Hex, sizeof(Hex), "%zx", Data.size());
      C.Out += Hex;
      C.Out += "\r\n";
      C.Out.append(Data);
      C.Out += "\r\n";
    } else {
      C.Out.append(Data);
    }
  }

  /// Serializes a streaming response's head and subscribes the
  /// connection to the hub.  The stream is the connection's last
  /// request: Connection: close, and keep-alive never resumes.
  void enqueueStream(Conn &C, const Response &R, bool Head, bool Http11) {
    std::string &Out = C.Out;
    Out += "HTTP/1.1 ";
    Out += std::to_string(R.Status);
    Out += ' ';
    Out += statusReason(R.Status);
    Out += "\r\nServer: lima\r\nContent-Type: ";
    Out += R.ContentType;
    Out += "\r\nCache-Control: no-cache";
    if (Http11 && !Head)
      Out += "\r\nTransfer-Encoding: chunked";
    Out += "\r\nConnection: close\r\n\r\n";
    Requests.fetch_add(1, std::memory_order_relaxed);
    if (Head) {
      // HEAD probes the endpoint without tying up a stream slot.
      C.CloseAfterWrite = true;
      return;
    }
    C.Chunked = Http11;
    C.Hub = R.Stream;
    int WakeFd = WakeWrite;
    C.SubId = C.Hub->subscribe([WakeFd] {
      // An EINTR here would eat the wakeup and stall the stream until
      // the next poll timeout; a full pipe (EAGAIN) already means a
      // wakeup is pending, so that loss is fine.
      char Byte = 's';
      (void)!retry::retryEintr(
          [&] { return ::write(WakeFd, &Byte, 1); });
    });
    appendStreamPayload(C, R.Body);
  }

  /// Moves any frames the hub has pending for this connection onto its
  /// output buffer.  Runs every poll tick (a publish wakes the loop).
  void pumpStream(Conn &C) {
    if (!C.Hub)
      return;
    // Don't pull new frames while earlier output is still unflushed:
    // leaving them in the hub's per-subscriber buffer is what makes
    // the MaxPendingBytes cap actually bind for a stalled client —
    // draining eagerly would just relocate the backlog into C.Out,
    // which has no bound of its own.
    if (C.OutOff < C.Out.size())
      return;
    std::string Frames;
    if (C.Hub->drain(C.SubId, Frames) && !Frames.empty())
      appendStreamPayload(C, Frames);
  }

  /// Tries to cut one complete request head off C.In.  Returns NeedMore
  /// when the terminator has not arrived (after enforcing the buffering
  /// limits), Fail when an error response was enqueued, Ready with the
  /// parsed request and the number of consumed bytes otherwise.
  HeadState cutRequest(Conn &C, Request &Req, size_t &Consumed) {
    const std::string &In = C.In;
    size_t HeadEnd = In.find("\r\n\r\n");
    size_t HeadLen;
    size_t TermLen;
    if (HeadEnd != std::string::npos) {
      HeadLen = HeadEnd;
      TermLen = 4;
    } else if ((HeadEnd = In.find("\n\n")) != std::string::npos) {
      HeadLen = HeadEnd;
      TermLen = 2;
    } else {
      // Not terminated yet — bound what we are willing to buffer.
      size_t FirstNl = In.find('\n');
      if (FirstNl == std::string::npos &&
          In.size() > Limits.MaxRequestLineBytes) {
        enqueueError(C, 414, "request line too long");
        return HeadState::Fail;
      }
      if (In.size() > Limits.MaxRequestLineBytes + Limits.MaxHeaderBytes) {
        enqueueError(C, 431, "request head too large");
        return HeadState::Fail;
      }
      return HeadState::NeedMore;
    }
    Consumed = HeadLen + TermLen;

    // Split the head into lines (tolerating both CRLF and bare LF).
    std::string_view Head(In.data(), HeadLen);
    std::vector<std::string_view> Lines;
    while (!Head.empty()) {
      size_t Nl = Head.find('\n');
      std::string_view Line =
          Nl == std::string_view::npos ? Head : Head.substr(0, Nl);
      if (!Line.empty() && Line.back() == '\r')
        Line.remove_suffix(1);
      Lines.push_back(Line);
      if (Nl == std::string_view::npos)
        break;
      Head.remove_prefix(Nl + 1);
    }
    if (Lines.empty() || Lines[0].empty()) {
      enqueueError(C, 400, "empty request line");
      return HeadState::Fail;
    }
    if (Lines[0].size() > Limits.MaxRequestLineBytes) {
      enqueueError(C, 414, "request line too long");
      return HeadState::Fail;
    }

    // Request line: METHOD SP TARGET SP VERSION, single spaces.
    std::string_view Line = Lines[0];
    size_t Sp1 = Line.find(' ');
    size_t Sp2 = Sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : Line.find(' ', Sp1 + 1);
    if (Sp1 == std::string_view::npos || Sp2 == std::string_view::npos ||
        Line.find(' ', Sp2 + 1) != std::string_view::npos || Sp1 == 0 ||
        Sp2 == Sp1 + 1 || Sp2 + 1 == Line.size()) {
      enqueueError(C, 400, "malformed request line");
      return HeadState::Fail;
    }
    Req.Method = std::string(Line.substr(0, Sp1));
    std::string_view Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    Req.Version = std::string(Line.substr(Sp2 + 1));
    size_t Question = Target.find('?');
    Req.Path = std::string(Target.substr(0, Question));
    Req.Query = Question == std::string_view::npos
                    ? std::string()
                    : std::string(Target.substr(Question + 1));
    if (Req.Version != "HTTP/1.1" && Req.Version != "HTTP/1.0") {
      enqueueError(C, 505, "only HTTP/1.0 and HTTP/1.1");
      return HeadState::Fail;
    }

    // Headers.
    size_t HeaderBytes = 0;
    for (size_t L = 1; L != Lines.size(); ++L) {
      std::string_view H = Lines[L];
      if (H.empty())
        continue;
      HeaderBytes += H.size();
      if (Lines.size() - 1 > Limits.MaxHeaderCount ||
          HeaderBytes > Limits.MaxHeaderBytes) {
        enqueueError(C, 431, "too many header bytes");
        return HeadState::Fail;
      }
      size_t ColonPos = H.find(':');
      if (ColonPos == std::string_view::npos || ColonPos == 0) {
        enqueueError(C, 400, "malformed header line");
        return HeadState::Fail;
      }
      std::string_view Value = H.substr(ColonPos + 1);
      while (!Value.empty() && (Value.front() == ' ' || Value.front() == '\t'))
        Value.remove_prefix(1);
      while (!Value.empty() && (Value.back() == ' ' || Value.back() == '\t'))
        Value.remove_suffix(1);
      Req.Headers.emplace_back(std::string(H.substr(0, ColonPos)),
                               std::string(Value));
    }
    return HeadState::Ready;
  }

  /// Parses and answers every complete request buffered on \p C.
  /// Returns false when the connection must close once Out drains.
  bool processInput(Conn &C) {
    // A streaming connection accepts no further requests; whatever the
    // client still sends is discarded (SSE clients send nothing).
    if (C.Hub) {
      C.In.clear();
      return true;
    }
    for (;;) {
      Request Req;
      size_t Consumed = 0;
      HeadState State = cutRequest(C, Req, Consumed);
      if (State == HeadState::NeedMore)
        return true;
      if (State == HeadState::Fail)
        return false;
      C.In.erase(0, Consumed);

      // A status surface accepts no request bodies; without parsing one
      // we also could not re-frame the connection, so reject and close.
      const std::string *Len = Req.header("Content-Length");
      if ((Len && *Len != "0") || Req.header("Transfer-Encoding")) {
        enqueueError(C, 400, "request body not supported");
        return false;
      }

      ++C.Served;
      bool KeepAlive;
      const std::string *Connection = Req.header("Connection");
      if (Req.Version == "HTTP/1.1")
        KeepAlive = !Connection || !equalsIgnoreCase(*Connection, "close");
      else
        KeepAlive = Connection && equalsIgnoreCase(*Connection, "keep-alive");
      if (C.Served >= Limits.MaxRequestsPerConnection)
        KeepAlive = false;

      bool Head = Req.Method == "HEAD";
      if (Req.Method != "GET" && !Head) {
        enqueueError(C, 405, "only GET and HEAD");
        return false;
      }
      auto [H, Mount] = findHandler(Req.Path);
      if (!H) {
        enqueue(C, Response::text(404, "not found: " + Req.Path + "\n"),
                Head, KeepAlive);
        recordRequest("<unmatched>", 404);
        if (!KeepAlive)
          return false;
        continue;
      }
      [[maybe_unused]] auto Begin = std::chrono::steady_clock::now();
      Response R = (*H)(Req);
      LIMA_METRIC_OBSERVE(
          "lima.http.request_duration_seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Begin)
              .count(),
          metrics::Histogram::exponentialBounds(1e-5, 10.0, 8));
      recordRequest(Mount, R.Status);
      if (R.Stream) {
        enqueueStream(C, R, Head, Req.Version == "HTTP/1.1");
        if (Head)
          return false;
        // The stream owns the connection from here; drop any pipelined
        // bytes the client optimistically sent.
        C.In.clear();
        return true;
      }
      enqueue(C, R, Head, KeepAlive);
      if (!KeepAlive)
        return false;
    }
  }

  /// Writes as much pending output as the socket accepts.  Returns
  /// false when the connection died.
  bool flushOut(Conn &C) {
    while (C.OutOff < C.Out.size()) {
      ssize_t N = ::send(C.Fd, C.Out.data() + C.OutOff,
                         C.Out.size() - C.OutOff, MSG_NOSIGNAL);
      if (N > 0) {
        C.OutOff += static_cast<size_t>(N);
        C.LastActiveMs = nowMs();
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return true;
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    if (C.OutOff == C.Out.size() && !C.Out.empty()) {
      C.Out.clear();
      C.OutOff = 0;
    }
    return !C.CloseAfterWrite || !C.Out.empty();
  }

  void acceptPending() {
    for (;;) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        return;
      setNonBlocking(Fd);
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      if (Conns.size() >= Limits.MaxConnections) {
        // Over the cap: answer 503 best-effort and drop the socket.
        static const char Busy[] =
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        (void)::send(Fd, Busy, sizeof(Busy) - 1, MSG_NOSIGNAL);
        ::close(Fd);
        recordRequest("<over-capacity>", 503);
        continue;
      }
      Conn C;
      C.Fd = Fd;
      C.LastActiveMs = nowMs();
      Conns.push_back(std::move(C));
    }
  }

  void dropConn(size_t Index) {
    Conn &C = Conns[Index];
    if (C.Hub)
      C.Hub->unsubscribe(C.SubId);
    ::close(C.Fd);
    Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(Index));
  }

  void loop() {
    std::vector<pollfd> Fds;
    char Buf[16 * 1024];
    while (!StopFlag.load(std::memory_order_acquire)) {
      Fds.clear();
      Fds.push_back({WakeRead, POLLIN, 0});
      Fds.push_back({ListenFd, POLLIN, 0});
      for (const Conn &C : Conns) {
        short Events = POLLIN;
        if (C.OutOff < C.Out.size())
          Events |= POLLOUT;
        Fds.push_back({C.Fd, Events, 0});
      }
      // acceptPending() below may grow Conns; only the first Polled
      // connections have a pollfd this tick (newcomers wait one tick).
      size_t Polled = Conns.size();
      int Ready = ::poll(Fds.data(), Fds.size(), 250);
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (Fds[0].revents & POLLIN)
        while (retry::retryEintr(
                   [&] { return ::read(WakeRead, Buf, sizeof(Buf)); }) > 0) {
        }
      if (Fds[1].revents & POLLIN)
        acceptPending();

      uint64_t Now = nowMs();
      for (size_t I = Polled; I-- != 0;) {
        Conn &C = Conns[I];
        short Revents = Fds[2 + I].revents;
        bool Alive = true;
        if (Revents & (POLLERR | POLLNVAL)) {
          Alive = false;
        } else if (Revents & POLLIN) {
          ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
          if (N > 0) {
            C.In.append(Buf, static_cast<size_t>(N));
            C.LastActiveMs = Now;
            if (!processInput(C))
              C.CloseAfterWrite = true;
          } else if (N == 0 ||
                     (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                      errno != EINTR)) {
            Alive = false;
          }
        } else if ((Revents & POLLHUP) && C.Out.empty()) {
          Alive = false;
        }
        if (Alive) {
          pumpStream(C);
          Alive = flushOut(C);
        }
        // LastActiveMs may be a hair newer than Now (flushOut stamps a
        // fresh clock); guard the subtraction or it wraps negative.
        // Streaming connections are exempt: a healthy SSE stream is
        // silent between windows, possibly for minutes.
        if (Alive && !C.Hub && Limits.IdleTimeoutMs != 0 &&
            Now > C.LastActiveMs && Now - C.LastActiveMs > Limits.IdleTimeoutMs)
          Alive = false;
        if (!Alive)
          dropConn(I);
      }
      // Newly accepted connections missed the per-conn pass above, and
      // frames published since the poll woke may target any subscriber:
      // pump every streaming connection so no frame waits a full tick.
      for (size_t I = Conns.size(); I-- != 0;) {
        Conn &C = Conns[I];
        if (!C.Hub || C.OutOff < C.Out.size())
          continue;
        pumpStream(C);
        if (!C.Out.empty() && !flushOut(C))
          dropConn(I);
      }
    }

    // Graceful drain: stop listening, give in-flight responses a short
    // window to flush, then tear down.  Streams end here: flush their
    // pending frames, send the chunked terminator so an HTTP/1.1 client
    // sees a clean end-of-stream, and let the drain loop do the rest.
    ::close(ListenFd);
    ListenFd = -1;
    for (Conn &C : Conns) {
      if (!C.Hub)
        continue;
      pumpStream(C);
      if (C.Chunked)
        C.Out += "0\r\n\r\n";
      C.Hub->unsubscribe(C.SubId);
      C.Hub.reset();
      C.CloseAfterWrite = true;
    }
    uint64_t Deadline = nowMs() + 500;
    while (nowMs() < Deadline) {
      bool Pending = false;
      for (size_t I = Conns.size(); I-- != 0;) {
        Conn &C = Conns[I];
        if (C.OutOff >= C.Out.size()) {
          dropConn(I);
          continue;
        }
        if (!flushOut(C))
          dropConn(I);
        else
          Pending = true;
      }
      if (!Pending)
        break;
      pollfd Pfd{Conns.empty() ? -1 : Conns[0].Fd, POLLOUT, 0};
      ::poll(&Pfd, 1, 20);
    }
  }
};

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

HttpServer::HttpServer() : I(std::make_unique<Impl>()) {}
HttpServer::HttpServer(ServerLimits Limits) : HttpServer() {
  I->Limits = Limits;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string Path, Handler H) {
  assert(!running() && "handlers must be mounted before start()");
  I->Handlers.emplace_back(std::move(Path), std::move(H));
}

void HttpServer::handlePrefix(std::string Prefix, Handler H) {
  assert(!running() && "handlers must be mounted before start()");
  I->PrefixHandlers.emplace_back(std::move(Prefix), std::move(H));
}

Error HttpServer::start(const std::string &Address) {
  if (running())
    return makeStringError("http server already running");
  auto HostPort = parseAddress(Address);
  if (!HostPort)
    return HostPort.takeError();
  const auto &[Host, Port] = *HostPort;

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeStringError("socket: %s", std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    int Saved = errno;
    ::close(Fd);
    return makeStringError("cannot bind %s: %s", Address.c_str(),
                           std::strerror(Saved));
  }
  if (::listen(Fd, 64) != 0) {
    int Saved = errno;
    ::close(Fd);
    return makeStringError("listen: %s", std::strerror(Saved));
  }
  socklen_t AddrLen = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &AddrLen);
  setNonBlocking(Fd);

  int Wake[2];
  if (::pipe(Wake) != 0) {
    int Saved = errno;
    ::close(Fd);
    return makeStringError("pipe: %s", std::strerror(Saved));
  }
  setNonBlocking(Wake[0]);
  setNonBlocking(Wake[1]);

  I->ListenFd = Fd;
  I->WakeRead = Wake[0];
  I->WakeWrite = Wake[1];
  I->Host = Host;
  I->BoundPort.store(ntohs(Addr.sin_port), std::memory_order_release);
  I->StopFlag.store(false, std::memory_order_release);
  I->Thread = std::thread([Impl = I.get()] { Impl->loop(); });
  I->Running.store(true, std::memory_order_release);
  return Error::success();
}

void HttpServer::stop() {
  if (!I || !I->Running.exchange(false, std::memory_order_acq_rel))
    return;
  I->StopFlag.store(true, std::memory_order_release);
  char Byte = 'x';
  (void)!retry::retryEintr(
      [&] { return ::write(I->WakeWrite, &Byte, 1); });
  if (I->Thread.joinable())
    I->Thread.join();
  I->closeFds();
}

bool HttpServer::running() const {
  return I->Running.load(std::memory_order_acquire);
}

uint16_t HttpServer::port() const {
  return I->BoundPort.load(std::memory_order_acquire);
}

std::string HttpServer::address() const {
  return I->Host + ":" + std::to_string(port());
}

uint64_t HttpServer::requestsServed() const {
  return I->Requests.load(std::memory_order_relaxed);
}
