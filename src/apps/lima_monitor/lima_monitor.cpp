//===- apps/lima_monitor/lima_monitor.cpp - live imbalance monitor --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tails a LIMATRACE text stream — a file being appended to, or stdin —
// and turns the paper's post-mortem methodology into a rolling health
// signal: the event stream is cut into fixed-width time windows, each
// window's measurement cube is reduced incrementally, and the
// per-window dispersion indices (SID_C per region, SID_A per activity,
// ID_P per processor) are logged as they complete.  Regions whose
// scaled index crosses --alert-threshold raise warnings, and the whole
// run exports its metrics in Prometheus text exposition format
// (--metrics-out, or SIGUSR1 for an on-demand dump).
//
//   lima_monitor run.trace --window 0.5 --follow
//   cfd_sim | lima_monitor - --window 1 --log-json --metrics-out m.prom
//
// The monitor is built to outlive the trace file's lifecycle.  While
// following it detects rotation (new inode at the path) and in-place
// truncation (copytruncate), finishes the old segment's windows and
// keeps going on the new one; window numbering stays monotonic across
// segments.  --checkpoint persists that numbering durably so a
// restarted monitor replays the file without re-reporting windows it
// already emitted.  Transient I/O trouble — EINTR, ENOSPC on a metrics
// or checkpoint dump, a rotation race — degrades to a warning and a
// retry, never an exit.
//
//===----------------------------------------------------------------------===//

#include "core/Dashboard.h"
#include "core/WindowHistory.h"
#include "core/WindowedAnalysis.h"
#include "stats/Dispersion.h"
#include "support/CommandLine.h"
#include "support/CrashDump.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/MetricsExport.h"
#include "support/ProcessMetrics.h"
#include "support/Retry.h"
#include "support/StatusServer.h"
#include "support/Telemetry.h"
#include "support/Version.h"
#include "support/raw_ostream.h"
#include "trace/StreamParser.h"
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <optional>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

using namespace lima;

namespace {

volatile std::sig_atomic_t DumpRequested = 0;
volatile std::sig_atomic_t StopRequested = 0;

void onSigUsr1(int) { DumpRequested = 1; }
void onStopSignal(int) { StopRequested = 1; }

struct MonitorOptions {
  double AlertThreshold = 0.0; ///< 0 disables alerting.
  bool PerRegion = false;
  std::string MetricsOut;
  /// Non-null with --http: retained summaries for /api/windows and the
  /// SSE fan-out for /events.
  std::shared_ptr<core::WindowHistory> History;
  std::shared_ptr<http::StreamHub> Events;
};

/// Emits one completed window: a structured log record, per-region
/// gauge updates, history retention, SSE fan-out and alert checks.
/// \p DroppedDelta is the lenient-mode drop count observed since the
/// previous drain, attributed to this window.
void reportWindow(const core::WindowResult &W, const MonitorOptions &Opts,
                  uint64_t DroppedDelta) {
  metrics::counter("lima.monitor.windows_total").add(1);

  if (Opts.History) {
    core::WindowSummary S = core::WindowHistory::summarize(W, DroppedDelta);
    Opts.History->setNames(W.Cube.regionNames(), W.Cube.activityNames());
    Opts.History->append(S);
    if (Opts.Events)
      Opts.Events->publish(core::dash::sseWindowFrame(
          S, W.Cube.regionNames(), W.Cube.activityNames()));
  }

  if (W.Empty) {
    logging::debug("window empty", {logging::field("window", W.Index),
                                    logging::field("start", W.StartTime),
                                    logging::field("end", W.EndTime)});
    return;
  }

  size_t TopRegion = W.Regions.MostImbalancedScaled;
  size_t TopActivity = W.Activities.MostImbalancedScaled;
  logging::info(
      "window",
      {logging::field("window", W.Index),
       logging::field("start", W.StartTime),
       logging::field("end", W.EndTime),
       logging::field("events", W.Events),
       logging::field("top_region", W.Cube.regionName(TopRegion)),
       logging::field("sid_c", W.Regions.ScaledIndex[TopRegion]),
       logging::field("top_activity", W.Cube.activityName(TopActivity)),
       logging::field("sid_a", W.Activities.ScaledIndex[TopActivity]),
       logging::field("most_imbalanced_proc",
                      W.Processors.MostFrequentlyImbalanced)});

  for (size_t I = 0; I != W.Regions.ScaledIndex.size(); ++I) {
    double SidC = W.Regions.ScaledIndex[I];
    metrics::gauge("lima.window.sid_c{region=\"" +
                   metrics::escapeLabelValue(W.Cube.regionName(I)) + "\"}")
        .set(SidC);
    if (Opts.PerRegion)
      logging::info("region", {logging::field("window", W.Index),
                               logging::field("region", W.Cube.regionName(I)),
                               logging::field("id_c", W.Regions.Index[I]),
                               logging::field("sid_c", SidC)});
    if (Opts.AlertThreshold > 0.0 && SidC > Opts.AlertThreshold) {
      metrics::counter("lima.monitor.alerts_total").add(1);
      logging::warn("imbalance alert",
                    {logging::field("window", W.Index),
                     logging::field("region", W.Cube.regionName(I)),
                     logging::field("sid_c", SidC),
                     logging::field("threshold", Opts.AlertThreshold)});
      if (Opts.Events)
        Opts.Events->publish(core::dash::sseAlertFrame(
            W.Index, I, W.Cube.regionName(I), SidC, Opts.AlertThreshold));
    }
  }
  for (size_t J = 0; J != W.Activities.ScaledIndex.size(); ++J)
    metrics::gauge("lima.window.sid_a{activity=\"" +
                   metrics::escapeLabelValue(W.Cube.activityName(J)) + "\"}")
        .set(W.Activities.ScaledIndex[J]);
}

void dumpMetrics(const MonitorOptions &Opts) {
  // Keep the process.* self-metrics as fresh in file dumps as the
  // /metrics endpoint keeps them per scrape.
  metrics::sampleProcessMetrics();
  if (Opts.MetricsOut.empty()) {
    errs() << metrics::writePrometheusText();
    errs().flush();
    return;
  }
  // A full disk (ENOSPC) is the classic way a long-lived monitor dies;
  // instead the dump backs off, retries, and on exhaustion logs and
  // carries on — the next dump gets another chance.
  Error Err = retry::withBackoff(
      retry::BackoffPolicy{}, "monitor.metrics_dump",
      [&] { return metrics::writeMetricsFile(Opts.MetricsOut); });
  if (Err)
    logging::error("metrics write failed",
                   {logging::field("path", Opts.MetricsOut),
                    logging::field("error", Err.message())});
}

} // namespace

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("lima_monitor: ");

  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], "--version") == 0) {
      outs() << "lima_monitor " << versionString() << '\n';
      outs().flush();
      return 0;
    }

  ArgParser Parser("lima_monitor",
                   "tails a LIMATRACE stream and reports per-window "
                   "imbalance indices live");
  Parser.addPositional("trace", "path to the trace file, or '-' for stdin");
  Parser.addOption("window", "window width in seconds", "1.0");
  Parser.addOption("index",
                   "dispersion index: euclidean, variance, cv, mad, max, "
                   "range, gini",
                   "euclidean");
  Parser.addFlag("follow",
                 "keep tailing the file after EOF (stdin always streams)");
  Parser.addOption("interval-ms", "poll cadence while following", "200");
  Parser.addOption("idle-exit-ms",
                   "with --follow: finish after this long without new "
                   "data (0 = follow forever)",
                   "0");
  Parser.addOption("alert-threshold",
                   "warn when a region's per-window SID_C exceeds this "
                   "(0 = no alerting)",
                   "0");
  Parser.addFlag("per-region", "log every region's indices per window");
  Parser.addOption("metrics-out",
                   "write Prometheus text exposition here on exit (and on "
                   "SIGUSR1); without it SIGUSR1 dumps to stderr",
                   "");
  Parser.addOption("checkpoint",
                   "persist window progress here (atomically, fsynced) "
                   "after each report; on restart the trace is replayed "
                   "without re-reporting checkpointed windows",
                   "");
  Parser.addOption("min-windows",
                   "exit nonzero unless at least this many windows were "
                   "emitted (smoke tests)",
                   "0");
  Parser.addOption("http",
                   "serve /metrics, /healthz, /readyz, /varz, /debug/spans, "
                   "/api/windows, /events and /dashboard on this address "
                   "(host:port; port 0 picks an ephemeral one, logged at "
                   "startup)",
                   "");
  Parser.addOption("history",
                   "retain the most recent N window summaries for "
                   "/api/windows and /dashboard (evictions are counted in "
                   "lima_history_evictions_total)",
                   "512");
  Parser.addOption("flight-recorder",
                   "keep the most recent N spans in a lock-free ring for "
                   "/debug/spans and crash dumps (0 disables; on by "
                   "default when --http is set)",
                   "4096");
  Parser.addOption("crash-dump",
                   "on SIGSEGV/SIGBUS/SIGABRT, write the flight recorder "
                   "and recent log records to this file before dying",
                   "");
  Parser.addFlag("strict",
                 "abort on the first malformed trace record (default)");
  Parser.addFlag("lenient",
                 "skip malformed trace records and report what was dropped");
  Parser.addFlag("quiet", "only errors (same as --log-level error)");
  Parser.addFlag("version", "print the version and exit");
  logging::addFlags(Parser);
  ExitOnErr(Parser.parse(Argc, Argv));

  // Window reports go to stdout — they are the tool's product; the
  // default stderr sink stays for nothing (errors go through ExitOnErr).
  // Repeat suppression is off for the same reason: every window record
  // matters, even though the message text repeats.
  logging::setSink(&outs());
  logging::setRepeatWindowMs(0);
  ExitOnErr(logging::configureFromFlags(Parser, Parser.getFlag("quiet")));
  metrics::setEnabled(true);

  if (Parser.getFlag("strict") && Parser.getFlag("lenient"))
    ExitOnErr(makeStringError("--strict and --lenient are mutually "
                              "exclusive"));

  double WindowSeconds = Parser.getDouble("window");
  if (!(WindowSeconds > 0.0))
    ExitOnErr(makeStringError("--window must be positive"));

  stats::DispersionKind Kind = stats::DispersionKind::Euclidean;
  {
    bool Known = false;
    for (stats::DispersionKind K : stats::AllDispersionKinds)
      if (stats::dispersionKindName(K) == Parser.getString("index")) {
        Kind = K;
        Known = true;
      }
    if (!Known)
      ExitOnErr(makeStringError("unknown dispersion index '%s'",
                                Parser.getString("index").c_str()));
  }

  MonitorOptions Monitor;
  Monitor.AlertThreshold = Parser.getDouble("alert-threshold");
  Monitor.PerRegion = Parser.getFlag("per-region");
  Monitor.MetricsOut = Parser.getString("metrics-out");

  uint64_t MinWindows = Parser.getUnsigned("min-windows");
  bool Http = !Parser.getString("http").empty();
  uint64_t HistoryCap = Parser.getUnsigned("history");
  if (HistoryCap == 0)
    ExitOnErr(makeStringError("--history must be positive"));
  if (Http) {
    Monitor.History =
        std::make_shared<core::WindowHistory>(static_cast<size_t>(HistoryCap));
    Monitor.Events = std::make_shared<http::StreamHub>();
  }

  // Crash dumps come first: everything after this line runs covered.
  if (!Parser.getString("crash-dump").empty())
    ExitOnErr(crashdump::install(Parser.getString("crash-dump")));

  // The flight recorder only earns its keep when something can read it
  // (/debug/spans or a crash dump).  Ring-only mode: nothing ever
  // drains collect() in a long-lived monitor, so the per-thread
  // buffers must not accumulate.
  uint64_t FlightCapacity = Parser.getUnsigned("flight-recorder");
  if (FlightCapacity != 0 &&
      (Http || !Parser.getString("crash-dump").empty())) {
    telemetry::enableFlightRecorder(FlightCapacity);
    telemetry::setRingOnly(true);
    telemetry::setEnabled(true);
  }

  bool Lenient = Parser.getFlag("lenient");
  ParseReport Report;
  ParseOptions Parse;
  Parse.Mode = Lenient ? ParseMode::Lenient : ParseMode::Strict;
  Parse.Report = Lenient ? &Report : nullptr;

  const std::string &Path = Parser.getPositionals()[0];
  bool Stdin = Path == "-";
  bool Follow = Parser.getFlag("follow") || Stdin;
  uint64_t IntervalMs = Parser.getUnsigned("interval-ms");
  uint64_t IdleExitMs = Parser.getUnsigned("idle-exit-ms");

  int Fd = 0;
  dev_t OpenDev = 0;
  ino_t OpenIno = 0;
  uint64_t Consumed = 0; ///< Bytes read from the current descriptor.
  if (!Stdin) {
    Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd < 0)
      ExitOnErr(makeStringError("cannot open '%s': %s", Path.c_str(),
                                std::strerror(errno)));
    struct stat St;
    if (::fstat(Fd, &St) == 0) {
      OpenDev = St.st_dev;
      OpenIno = St.st_ino;
    }
  }
  // sigaction without SA_RESTART: std::signal on glibc restarts a
  // blocking read() after the handler runs, deferring the metrics dump
  // until new data arrives; without it read() fails with EINTR and the
  // loop services DumpRequested promptly even on a quiet stream.
  struct sigaction DumpAction;
  std::memset(&DumpAction, 0, sizeof(DumpAction));
  DumpAction.sa_handler = onSigUsr1;
  sigemptyset(&DumpAction.sa_mask);
  DumpAction.sa_flags = 0;
  ::sigaction(SIGUSR1, &DumpAction, nullptr);

  // SIGTERM/SIGINT request a graceful wind-down: finish the current
  // read, flush pending windows, dump metrics, stop the status server
  // and exit 0 — so `kill` on a supervised monitor is a clean stop,
  // not an abort.  Same no-SA_RESTART reasoning as above.
  struct sigaction StopAction;
  std::memset(&StopAction, 0, sizeof(StopAction));
  StopAction.sa_handler = onStopSignal;
  sigemptyset(&StopAction.sa_mask);
  StopAction.sa_flags = 0;
  ::sigaction(SIGTERM, &StopAction, nullptr);
  ::sigaction(SIGINT, &StopAction, nullptr);

  std::optional<trace::StreamParser> Stream;
  Stream.emplace(Parse);
  std::optional<core::WindowedAnalyzer> Analyzer;
  core::WindowedOptions WOpts;
  WOpts.WindowSeconds = WindowSeconds;
  WOpts.Views.Kind = Kind;
  WOpts.Mode = Parse.Mode;
  WOpts.Report = Parse.Report;

  // Atomics: the status-server thread reads these while the main
  // thread ingests.
  std::atomic<uint64_t> WindowsEmitted{0};
  std::atomic<uint64_t> DroppedRecords{0};
  std::vector<trace::Event> Events;
  // Lenient-mode drops already attributed to a reported window; the
  // delta since the last drain rides on each batch's first window.
  uint64_t AttributedDrops = 0;
  // Events parsed by segments already finished (rotated away).
  uint64_t EventsParsedPrior = 0;

  // Windows are numbered globally and monotonically across file
  // segments: each rotation/truncation restarts the analyzer (the new
  // segment has its own t = 0), and its window k becomes global window
  // WindowIndexBase + k.  LastReported is the newest global index ever
  // reported (-1 before the first); the checkpoint persists both so a
  // restarted monitor can replay the file — reconstructing its state
  // deterministically — while suppressing the re-report of windows a
  // previous run already emitted.
  const std::string CheckpointPath = Parser.getString("checkpoint");
  uint64_t WindowIndexBase = 0;
  int64_t LastReported = -1;
  {
    struct stat CkSt;
    if (!CheckpointPath.empty() && ::stat(CheckpointPath.c_str(), &CkSt) == 0) {
      std::string Body = ExitOnErr(readFile(CheckpointPath));
      unsigned long long Base = 0, Emitted = 0;
      long long Last = 0;
      if (std::sscanf(Body.c_str(),
                      "LIMACKPT 1\nbase %llu\nreported %lld\nemitted %llu",
                      &Base, &Last, &Emitted) != 3)
        ExitOnErr(makeStringError("malformed checkpoint '%s' (delete it to "
                                  "start over)",
                                  CheckpointPath.c_str()));
      WindowIndexBase = Base;
      LastReported = Last;
      WindowsEmitted.store(Emitted, std::memory_order_relaxed);
      logging::info("checkpoint restored",
                    {logging::field("path", CheckpointPath),
                     logging::field("last_window", static_cast<int64_t>(Last)),
                     logging::field("windows",
                                    static_cast<uint64_t>(Emitted))});
    }
  }

  auto writeCheckpoint = [&] {
    if (CheckpointPath.empty())
      return;
    std::string Body =
        "LIMACKPT 1\nbase " + std::to_string(WindowIndexBase) + "\nreported " +
        std::to_string(LastReported) + "\nemitted " +
        std::to_string(WindowsEmitted.load(std::memory_order_relaxed)) + "\n";
    // Durable (temp fsync + dir fsync) and retried: a lost checkpoint
    // means double-reported windows after a restart.  Still never
    // fatal — on exhaustion the monitor warns and keeps monitoring.
    Error Err =
        retry::withBackoff(retry::BackoffPolicy{}, "monitor.checkpoint", [&] {
          return writeFileAtomic(CheckpointPath, Body, Durability::Full);
        });
    if (Err)
      logging::warn("checkpoint write failed",
                    {logging::field("path", CheckpointPath),
                     logging::field("error", Err.message())});
  };

  auto consumeEvents = [&]() {
    for (const trace::Event &E : Events) {
      if (!Analyzer) {
        // First event: the header tables are complete (declarations
        // precede events in the format), size the analyzer from them.
        if (Stream->regionNames().empty() || Stream->activityNames().empty())
          ExitOnErr(makeStringError("trace declares no regions or "
                                    "activities; nothing to monitor"));
        Analyzer.emplace(Stream->regionNames(), Stream->activityNames(),
                         Stream->numProcs(), WOpts);
      }
      ExitOnErr(Analyzer->addEvent(E));
      metrics::counter("lima.monitor.events_total").add(1);
    }
    Events.clear();
    if (!Analyzer)
      return;
    LIMA_SPAN("monitor.drain");
    auto T0 = std::chrono::steady_clock::now();
    std::vector<core::WindowResult> Done = Analyzer->drainCompleted();
    uint64_t NowDropped = Parse.Report ? Parse.Report->DroppedRecords : 0;
    uint64_t DropDelta = NowDropped - AttributedDrops;
    if (!Done.empty())
      AttributedDrops = NowDropped;
    bool Reported = false;
    for (core::WindowResult &W : Done) {
      W.Index += WindowIndexBase;
      if (static_cast<int64_t>(W.Index) <= LastReported) {
        // Replaying a window a previous run already reported.
        metrics::counter("lima.monitor.windows_suppressed_total").add(1);
        continue;
      }
      reportWindow(W, Monitor, DropDelta);
      DropDelta = 0;
      LastReported = static_cast<int64_t>(W.Index);
      ++WindowsEmitted;
      Reported = true;
    }
    if (!Done.empty()) {
      double Sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
      metrics::histogram("lima.monitor.drain_seconds",
                         metrics::Histogram::exponentialBounds(1e-6, 10.0, 8))
          .observe(Sec);
    }
    metrics::gauge("lima.monitor.watermark_seconds")
        .set(Analyzer->watermark());
    if (Parse.Report)
      DroppedRecords.store(Parse.Report->DroppedRecords,
                           std::memory_order_relaxed);
    if (Reported)
      writeCheckpoint();
  };

  // Flushes every window the current analyzer still holds (its stream
  // has ended — final EOF or a retired segment).
  auto reportRemaining = [&] {
    if (!Analyzer)
      return;
    uint64_t NowDropped = Parse.Report ? Parse.Report->DroppedRecords : 0;
    uint64_t DropDelta = NowDropped - AttributedDrops;
    AttributedDrops = NowDropped;
    bool Reported = false;
    for (core::WindowResult &W : Analyzer->finish()) {
      W.Index += WindowIndexBase;
      if (static_cast<int64_t>(W.Index) <= LastReported) {
        metrics::counter("lima.monitor.windows_suppressed_total").add(1);
        continue;
      }
      reportWindow(W, Monitor, DropDelta);
      DropDelta = 0;
      LastReported = static_cast<int64_t>(W.Index);
      ++WindowsEmitted;
      Reported = true;
    }
    if (Reported)
      writeCheckpoint();
  };

  // Retires the current file segment (it was rotated away or truncated
  // under us) and prepares for the next: the old segment's windows are
  // flushed, then parser and analyzer restart — the new segment has its
  // own header and its own t = 0 — with window numbering continuing
  // from where the old segment left off.
  auto beginSegment = [&](const char *Reason) {
    ExitOnErr(Stream->finish(Events));
    consumeEvents();
    reportRemaining();
    WindowIndexBase = static_cast<uint64_t>(LastReported + 1);
    EventsParsedPrior += Stream->eventsParsed();
    Analyzer.reset();
    Stream.emplace(Parse);
    metrics::counter(std::string("lima.reopen_total{reason=\"") + Reason +
                     "\"}")
        .add(1);
    // A restart from here replays the *new* file, so the checkpoint
    // must carry the new segment's base immediately.
    writeCheckpoint();
  };

  status::StatusServer Status;
  if (Http) {
    Status.addHealthProbe("stream", [] {
      return status::ProbeResult{true, "ingesting"};
    });
    Status.addReadyProbe("windows", [&WindowsEmitted, MinWindows] {
      uint64_t N = WindowsEmitted.load(std::memory_order_relaxed);
      status::ProbeResult R;
      R.Ok = N >= MinWindows;
      R.Detail = "emitted " + std::to_string(N) + " windows (min " +
                 std::to_string(MinWindows) + ")";
      return R;
    });
    Status.addVar("windows_emitted", [&WindowsEmitted] {
      return std::to_string(WindowsEmitted.load(std::memory_order_relaxed));
    });
    Status.addVar("events_total", [] {
      return std::to_string(
          metrics::counter("lima.monitor.events_total").value());
    });
    Status.addVar("dropped_records", [&DroppedRecords] {
      return std::to_string(DroppedRecords.load(std::memory_order_relaxed));
    });
    Status.addVar("history_windows", [History = Monitor.History] {
      return std::to_string(History->size());
    });
    Status.addVar("history_capacity", [History = Monitor.History] {
      return std::to_string(History->capacity());
    });
    Status.addVar("history_evictions", [History = Monitor.History] {
      return std::to_string(History->evictions());
    });
    Status.addVar("sse_subscribers", [Events = Monitor.Events] {
      return std::to_string(Events->subscribers());
    });
    Status.addVar("sse_frames_published", [Events = Monitor.Events] {
      return std::to_string(Events->framesPublished());
    });
    core::dash::mountDashboard(Status, Monitor.History, Monitor.Events);
    ExitOnErr(Status.start(Parser.getString("http")));
    // Smoke tests bind port 0 and learn the real port from this line.
    logging::info("status server listening",
                  {logging::field("address", Status.address())});
  }

  char Buf[1 << 16];
  uint64_t IdleMs = 0;
  for (;;) {
    if (DumpRequested) {
      DumpRequested = 0;
      dumpMetrics(Monitor);
    }
    if (StopRequested)
      break;
    // EINTR retries in place — unless a signal flagged work above, in
    // which case the loop must come back around to service it (the
    // handlers are installed without SA_RESTART for exactly this).
    ssize_t N = retry::retryEintr(
        [&] { return fault::read("monitor.read", Fd, Buf, sizeof(Buf)); },
        [] { return DumpRequested != 0 || StopRequested != 0; });
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (retry::isTransientErrno(errno)) {
        logging::warn("transient read error, retrying",
                      {logging::field("error", std::strerror(errno))});
        std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
        continue;
      }
      ExitOnErr(makeStringError("read failed: %s", std::strerror(errno)));
    }
    if (N == 0) {
      // EOF.  A pipe's EOF is final; a followed file may grow, be
      // rotated to a new inode, or be truncated in place.
      if (!Follow || Stdin)
        break;
      if (IdleExitMs != 0 && IdleMs >= IdleExitMs)
        break;
      struct stat PathSt;
      if (::stat(Path.c_str(), &PathSt) != 0) {
        // Mid-rotation gap: the path is briefly gone.  Keep polling —
        // the retired descriptor stays valid meanwhile.
        std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
        IdleMs += IntervalMs;
        continue;
      }
      if (PathSt.st_dev != OpenDev || PathSt.st_ino != OpenIno) {
        // Rotated: a different file sits at the path.  Open it first —
        // only a successful open retires the old segment, so transient
        // open failures (EMFILE, another rotation race) just retry on
        // the next poll with nothing lost.
        int NewFd;
        if (fault::Fault F = fault::check("monitor.open")) {
          errno = F.errnoValue() ? F.errnoValue() : EIO;
          NewFd = -1;
        } else {
          NewFd = ::open(Path.c_str(), O_RDONLY);
        }
        if (NewFd < 0) {
          logging::warn("reopen after rotation failed, retrying",
                        {logging::field("path", Path),
                         logging::field("error", std::strerror(errno))});
          std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
          IdleMs += IntervalMs;
          continue;
        }
        beginSegment("rotate");
        ::close(Fd);
        Fd = NewFd;
        struct stat NewSt;
        if (::fstat(Fd, &NewSt) == 0) {
          OpenDev = NewSt.st_dev;
          OpenIno = NewSt.st_ino;
        }
        Consumed = 0;
        IdleMs = 0;
        logging::info("trace rotated, following new file",
                      {logging::field("path", Path)});
        continue;
      }
      if (static_cast<uint64_t>(PathSt.st_size) < Consumed) {
        // Truncated in place (copytruncate rotation): same inode,
        // fewer bytes than we consumed.  Start over from byte 0.
        beginSegment("truncate");
        if (::lseek(Fd, 0, SEEK_SET) < 0)
          ExitOnErr(makeStringError("seek after truncation failed: %s",
                                    std::strerror(errno)));
        Consumed = 0;
        IdleMs = 0;
        logging::info("trace truncated, restarting from start",
                      {logging::field("path", Path)});
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
      IdleMs += IntervalMs;
      continue;
    }
    IdleMs = 0;
    Consumed += static_cast<uint64_t>(N);
    {
      LIMA_SPAN("monitor.feed");
      ExitOnErr(Stream->feed(std::string_view(Buf, static_cast<size_t>(N)),
                             Events));
    }
    consumeEvents();
    outs().flush();
  }

  ExitOnErr(Stream->finish(Events));
  consumeEvents();
  reportRemaining();
  writeCheckpoint();
  if (!Stdin)
    ::close(Fd);

  if (Lenient && Report.anyDropped())
    logging::warn("parse report",
                  {logging::field("dropped", Report.DroppedRecords),
                   logging::field("total", Report.TotalRecords)});

  logging::info("stream complete",
                {logging::field("windows",
                                WindowsEmitted.load(std::memory_order_relaxed)),
                 logging::field("events",
                                EventsParsedPrior + Stream->eventsParsed()),
                 logging::field("span",
                                Analyzer ? Analyzer->spanEnd() : 0.0)});
  outs().flush();

  if (!Monitor.MetricsOut.empty())
    dumpMetrics(Monitor);

  // Graceful last: scrapers in flight get their response before the
  // socket goes away.
  Status.stop();

  uint64_t FinalWindows = WindowsEmitted.load(std::memory_order_relaxed);
  if (FinalWindows < MinWindows)
    ExitOnErr(makeStringError("emitted %llu windows, expected at least %llu",
                              static_cast<unsigned long long>(FinalWindows),
                              static_cast<unsigned long long>(MinWindows)));
  return 0;
}
