//===- apps/cfd/Cfd.h - Message-passing CFD application ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A message-passing computational-fluid-dynamics-style program, the
/// stand-in for the paper's evaluated application.  A 2-D structured
/// grid is decomposed by rows across the simulated ranks; every time
/// step executes seven instrumented main loops whose activity mix
/// mirrors the paper's Table 1:
///
///   loop1  pressure solve     computation + allreduce + barrier
///   loop2  viscous fluxes     computation + reduce
///   loop3  implicit sweeps    computation + pipelined point-to-point
///   loop4  advection          computation + halo point-to-point
///   loop5  time step          computation + p2p + allreduce + barrier
///   loop6  residual smoothing computation + p2p + barrier
///   loop7  statistics         computation + reduce
///
/// The solver performs *real* distributed numerics (Jacobi relaxation
/// with genuine halo exchange through the simulator's payload-carrying
/// messages, residual allreduce), while virtual compute time is charged
/// per cell with per-loop, per-rank work factors — the configurable
/// load-imbalance injection whose analysis the methodology is about.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_APPS_CFD_CFD_H
#define LIMA_APPS_CFD_CFD_H

#include "sim/Simulation.h"
#include "support/Error.h"
#include "trace/Trace.h"
#include <vector>

namespace lima {
namespace cfd {

/// Configuration of one CFD run.
struct CfdConfig {
  /// Ranks (the paper's experiment uses 16).
  unsigned Procs = 16;
  /// Grid columns.
  unsigned Nx = 192;
  /// Grid rows owned per rank (uniform decomposition; imbalance comes
  /// from the work factors, not from uneven row counts).
  unsigned RowsPerRank = 12;
  /// Time steps to simulate.
  unsigned Iterations = 10;
  /// Virtual seconds charged per cell per sweep-unit of work.
  double SecondsPerCell = 3e-6;
  /// Scales the built-in per-loop imbalance patterns; 0 is perfectly
  /// balanced, 1 the paper-shaped default.
  double ImbalanceScale = 1.0;
  /// Additional relative growth of the imbalance per iteration (models
  /// drifting load, e.g. an adaptive mesh): the effective scale of
  /// iteration k is ImbalanceScale * (1 + k * ImbalanceDriftPerIteration).
  double ImbalanceDriftPerIteration = 0.0;
  /// Interconnect model (defaults approximate the SP2 era).
  sim::NetworkModel Network{40e-6, 35e6, 5e-6, 5e-6};
  /// Optional per-rank relative processor speed (empty = homogeneous);
  /// forwarded to the simulator, e.g. {1, 1, 0.6, 1, ...} models one
  /// slow node.
  std::vector<double> ComputeSpeed;
  /// Overlap the halo exchanges of the advection and smoothing loops
  /// with their computation (send boundary first, post non-blocking
  /// receives, compute, then wait) — the classic remedy the diagnosis
  /// engine suggests for communication-bound regions.
  bool OverlapHalo = false;
};

/// Names of the seven instrumented loops, in region-id order.
const std::vector<std::string> &cfdRegionNames();

/// Deterministic per-loop, per-rank relative work factor (1.0 at
/// ImbalanceScale 0) for iteration \p Iteration.  Exposed for tests and
/// sweeps.
double cfdWorkFactor(const CfdConfig &Config, unsigned Loop, unsigned Rank,
                     unsigned Iteration = 0);

/// Result of a run: the trace plus solver-level outputs.
struct CfdResult {
  trace::Trace Trace;
  /// Global residual after the final pressure solve.
  double FinalResidual = 0.0;
  /// Residual after each iteration's pressure solve (monotonically
  /// non-increasing for a diffusive problem — pinned by tests).
  std::vector<double> ResidualHistory;
};

/// Runs the CFD program on the simulator.
Expected<CfdResult> runCfd(const CfdConfig &Config);

} // namespace cfd
} // namespace lima

#endif // LIMA_APPS_CFD_CFD_H
