//===- apps/cfd/Cfd.cpp - Message-passing CFD application -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Calibration notes.  The per-loop virtual work units and imbalance
// patterns below are tuned so a default run reproduces the *shape* of
// the paper's Table 1 on the simulated interconnect:
//
//  * the compute ratios follow the published 12.24 : 7.90 : 5.22 : 8.03 :
//    7.53 : 0.36 : 0.28 breakdown;
//  * collective time emerges as allreduce/reduce *wait* caused by the
//    injected compute skew (ramp patterns; range 1.10 of the mean gives
//    the paper's coll/comp ~ 0.55 in loop 1);
//  * loop 3's point-to-point time comes from wavefront pipeline fill in
//    the implicit sweeps (11 chunks per direction makes p2p/comp ~ 1.1,
//    matching the published 5.68/5.22) and is naturally balanced across
//    ranks, like the paper's Figure 2;
//  * loop 4 has five work-heavy ranks and loop 6 eleven work-light ranks,
//    Figure 1's patterns.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "support/Compiler.h"
#include "support/MathUtils.h"
#include <cassert>
#include <cmath>
#include <mutex>

using namespace lima;
using namespace lima::cfd;
using sim::Comm;
using sim::RegionScope;

const std::vector<std::string> &cfd::cfdRegionNames() {
  static const std::vector<std::string> Names = {
      "pressure",  "viscous",   "implicit-sweeps", "advection",
      "time-step", "smoothing", "statistics"};
  return Names;
}

namespace {

/// Virtual work units per loop (relative scale follows the paper's
/// computation column normalized to loop 6).
const double LoopWork[7] = {34.0, 21.9, 14.5, 22.3, 20.9, 1.0, 0.78};

/// Wavefront chunks per sweep direction in loop 3.
constexpr unsigned PipelineChunks = 11;

/// Raw (uncentered) imbalance delta of \p Rank in \p Loop.
double rawDelta(unsigned Loop, unsigned Rank, unsigned Procs) {
  double X = Procs > 1
                 ? static_cast<double>(Rank) / static_cast<double>(Procs - 1)
                 : 0.0;
  switch (Loop) {
  case 0: {
    // Ascending ramp, with ranks 0 and 1 swapped so that rank 1 (the
    // paper's "processor 2") is the loop's least-loaded processor.
    unsigned R = Rank == 0 ? 1 : Rank == 1 ? 0 : Rank;
    double XS = Procs > 1
                    ? static_cast<double>(R) / static_cast<double>(Procs - 1)
                    : 0.0;
    return 1.10 * XS;
  }
  case 1:
    return 1.60 * (1.0 - X); // Descending ramp (heavy low ranks).
  case 2:
    return Rank % 2 == 0 ? -0.05 : 0.05; // Nearly balanced.
  case 3:
    return Rank % 3 == 1 ? 0.30 : -0.15; // Five heavy ranks at P=16.
  case 4:
    return 0.38 * X;
  case 5:
    return Rank % 3 == 2 ? 0.90 : -0.45; // Eleven light ranks at P=16.
  case 6:
    return 0.21 * X;
  default:
    lima_unreachable("loop out of range");
  }
}

} // namespace

double cfd::cfdWorkFactor(const CfdConfig &Config, unsigned Loop,
                          unsigned Rank, unsigned Iteration) {
  assert(Loop < 7 && "loop out of range");
  assert(Rank < Config.Procs && "rank out of range");
  KahanSum Mean;
  for (unsigned R = 0; R != Config.Procs; ++R)
    Mean.add(rawDelta(Loop, R, Config.Procs));
  double Centered = rawDelta(Loop, Rank, Config.Procs) -
                    Mean.total() / Config.Procs;
  double Scale = Config.ImbalanceScale *
                 (1.0 + Iteration * Config.ImbalanceDriftPerIteration);
  double Factor = 1.0 + Scale * Centered;
  return std::max(Factor, 0.05);
}

namespace {

/// Per-rank slab of the distributed grid, with one ghost row on each
/// side.  Real numerics run on it; virtual time is charged separately.
class RankGrid {
public:
  RankGrid(unsigned Rows, unsigned Nx, unsigned Rank)
      : Rows(Rows), Nx(Nx), Phi((Rows + 2) * Nx, 0.0), Next(Phi) {
    // Deterministic, rank-dependent smooth initial condition.
    for (unsigned R = 1; R <= Rows; ++R)
      for (unsigned C = 0; C != Nx; ++C)
        at(Phi, R, C) = 1.0 +
                        0.5 * std::sin(0.1 * (Rank * Rows + R)) *
                            std::cos(0.05 * C);
  }

  unsigned rowBytes() const { return Nx * sizeof(double); }
  double *topRow() { return &at(Phi, 1, 0); }
  double *bottomRow() { return &at(Phi, Rows, 0); }
  double *ghostTop() { return &at(Phi, 0, 0); }
  double *ghostBottom() { return &at(Phi, Rows + 1, 0); }

  /// One Jacobi relaxation sweep; returns the local squared update.
  double jacobiSweep() {
    double Residual = 0.0;
    for (unsigned R = 1; R <= Rows; ++R) {
      for (unsigned C = 0; C != Nx; ++C) {
        double Left = C > 0 ? at(Phi, R, C - 1) : at(Phi, R, C);
        double Right = C + 1 < Nx ? at(Phi, R, C + 1) : at(Phi, R, C);
        double Updated =
            0.25 * (Left + Right + at(Phi, R - 1, C) + at(Phi, R + 1, C));
        double Delta = Updated - at(Phi, R, C);
        Residual += Delta * Delta;
        at(Next, R, C) = Updated;
      }
    }
    Phi.swap(Next);
    return Residual;
  }

  /// Row-wise relaxation of a chunk of columns (the loop-3 wavefront
  /// stage); \p Chunk in [0, NumChunks).
  void lineRelaxChunk(unsigned Chunk, unsigned NumChunks) {
    unsigned Begin = Nx * Chunk / NumChunks;
    unsigned End = Nx * (Chunk + 1) / NumChunks;
    for (unsigned R = 1; R <= Rows; ++R)
      for (unsigned C = Begin; C != End; ++C)
        at(Phi, R, C) =
            0.5 * at(Phi, R, C) +
            0.25 * (at(Phi, R - 1, C) + at(Phi, R + 1, C));
  }

  /// Simple upwind advection update along rows (loop 4's real work).
  void advectRows() {
    for (unsigned R = 1; R <= Rows; ++R)
      for (unsigned C = Nx - 1; C != 0; --C)
        at(Phi, R, C) += 0.1 * (at(Phi, R, C - 1) - at(Phi, R, C));
  }

  /// 1-2-1 smoothing of the interior (loop 6's real work).
  void smooth() {
    for (unsigned R = 1; R <= Rows; ++R)
      for (unsigned C = 1; C + 1 < Nx; ++C)
        at(Phi, R, C) = 0.25 * at(Phi, R, C - 1) + 0.5 * at(Phi, R, C) +
                        0.25 * at(Phi, R, C + 1);
  }

  /// Sum of the interior field (loop 7's statistic).
  double interiorSum() const {
    KahanSum Sum;
    for (unsigned R = 1; R <= Rows; ++R)
      for (unsigned C = 0; C != Nx; ++C)
        Sum.add(at(Phi, R, C));
    return Sum.total();
  }

private:
  double &at(std::vector<double> &V, unsigned R, unsigned C) {
    return V[R * Nx + C];
  }
  const double &at(const std::vector<double> &V, unsigned R,
                   unsigned C) const {
    return V[R * Nx + C];
  }

  unsigned Rows, Nx;
  std::vector<double> Phi, Next;
};

/// Tags: 40/41 halo, 50/51 smoothing halo, 60 time-step exchange,
/// 100+m / 200+m wavefront chunks.
enum Tags {
  TagHaloUp = 40,
  TagHaloDown = 41,
  TagSmoothUp = 50,
  TagSmoothDown = 51,
  TagTimeStep = 60,
  TagForwardBase = 100,
  TagBackwardBase = 200,
};

/// All per-rank state and loop bodies of the CFD program.
class CfdRankProgram {
public:
  CfdRankProgram(const CfdConfig &Config, Comm &C,
                 std::vector<double> &ResidualHistory, std::mutex &HistoryMu)
      : Config(Config), C(C), Rank(C.rank()), Procs(C.size()),
        Grid(Config.RowsPerRank, Config.Nx, C.rank()),
        ResidualHistory(ResidualHistory), HistoryMu(HistoryMu) {}

  void run() {
    for (unsigned Iter = 0; Iter != Config.Iterations; ++Iter) {
      CurrentIteration = Iter;
      pressureSolve(Iter);
      viscousFluxes();
      implicitSweeps();
      advection();
      timeStep();
      smoothing();
      statistics();
    }
  }

private:
  /// Virtual compute seconds of \p Loop for this rank.
  double work(unsigned Loop) const {
    double Cells = static_cast<double>(Config.RowsPerRank) * Config.Nx;
    return LoopWork[Loop] * Cells * Config.SecondsPerCell *
           cfdWorkFactor(Config, Loop, Rank, CurrentIteration);
  }

  void exchangeHalo(int UpTag, int DownTag, void *TopGhost, void *BotGhost,
                    const void *Top, const void *Bot, uint64_t Bytes) {
    // Eager sends first, then receives: deadlock-free under the
    // simulator's buffered-send semantics.
    if (Rank > 0)
      C.sendData(Rank - 1, Top, Bytes, UpTag);
    if (Rank + 1 < Procs)
      C.sendData(Rank + 1, Bot, Bytes, DownTag);
    if (Rank > 0)
      C.recvData(Rank - 1, TopGhost, Bytes, DownTag);
    if (Rank + 1 < Procs)
      C.recvData(Rank + 1, BotGhost, Bytes, UpTag);
  }

  /// Overlapped variant: boundary rows go out *before* the compute (the
  /// ghost values lag one iteration, Jacobi-style), non-blocking
  /// receives are posted, and the waits land after the compute so the
  /// message flight and the neighbor skew hide behind useful work.
  template <typename ComputeFn>
  void exchangeHaloOverlapped(int UpTag, int DownTag, void *TopGhost,
                              void *BotGhost, const void *Top,
                              const void *Bot, uint64_t Bytes,
                              ComputeFn Compute) {
    if (Rank > 0)
      C.sendData(Rank - 1, Top, Bytes, UpTag);
    if (Rank + 1 < Procs)
      C.sendData(Rank + 1, Bot, Bytes, DownTag);
    sim::Comm::Request UpReq = 0, DownReq = 0;
    if (Rank > 0)
      UpReq = C.irecv(Rank - 1, TopGhost, Bytes, DownTag);
    if (Rank + 1 < Procs)
      DownReq = C.irecv(Rank + 1, BotGhost, Bytes, UpTag);
    Compute();
    if (Rank > 0)
      C.wait(UpReq);
    if (Rank + 1 < Procs)
      C.wait(DownReq);
  }

  // Loop 1: Jacobi pressure relaxation + global residual + barrier.
  void pressureSolve(unsigned Iter) {
    RegionScope Scope(C, 0);
    double LocalResidual = Grid.jacobiSweep() + Grid.jacobiSweep();
    C.compute(work(0));
    double GlobalResidual = C.allReduceSum(LocalResidual);
    C.barrier();
    if (Rank == 0) {
      std::lock_guard<std::mutex> Guard(HistoryMu);
      ResidualHistory.push_back(GlobalResidual);
      (void)Iter;
    }
  }

  // Loop 2: viscous flux evaluation + rooted reduction.
  void viscousFluxes() {
    RegionScope Scope(C, 1);
    Grid.smooth();
    C.compute(work(1));
    C.reduceSum(0, Grid.interiorSum());
  }

  // Loop 3: pipelined implicit line sweeps (forward + backward
  // wavefront); point-to-point time is pipeline fill/drain.
  void implicitSweeps() {
    RegionScope Scope(C, 2);
    double Stage = work(2) / (2.0 * PipelineChunks);
    std::vector<double> Ghost(Config.Nx);
    for (unsigned M = 0; M != PipelineChunks; ++M) {
      if (Rank > 0)
        C.recvData(Rank - 1, Ghost.data(), Grid.rowBytes(),
                   TagForwardBase + static_cast<int>(M));
      Grid.lineRelaxChunk(M, PipelineChunks);
      C.compute(Stage);
      if (Rank + 1 < Procs)
        C.sendData(Rank + 1, Grid.bottomRow(), Grid.rowBytes(),
                   TagForwardBase + static_cast<int>(M));
    }
    for (unsigned M = 0; M != PipelineChunks; ++M) {
      if (Rank + 1 < Procs)
        C.recvData(Rank + 1, Ghost.data(), Grid.rowBytes(),
                   TagBackwardBase + static_cast<int>(M));
      Grid.lineRelaxChunk(PipelineChunks - 1 - M, PipelineChunks);
      C.compute(Stage);
      if (Rank > 0)
        C.sendData(Rank - 1, Grid.topRow(), Grid.rowBytes(),
                   TagBackwardBase + static_cast<int>(M));
    }
  }

  // Loop 4: advection with real halo exchange (optionally overlapped).
  void advection() {
    RegionScope Scope(C, 3);
    if (Config.OverlapHalo) {
      exchangeHaloOverlapped(TagHaloUp, TagHaloDown, Grid.ghostTop(),
                             Grid.ghostBottom(), Grid.topRow(),
                             Grid.bottomRow(), Grid.rowBytes(), [&] {
                               Grid.advectRows();
                               C.compute(work(3));
                             });
      return;
    }
    Grid.advectRows();
    C.compute(work(3));
    exchangeHalo(TagHaloUp, TagHaloDown, Grid.ghostTop(), Grid.ghostBottom(),
                 Grid.topRow(), Grid.bottomRow(), Grid.rowBytes());
  }

  // Loop 5: CFL time-step estimate: compute + allreduce + tiny
  // neighbor exchange + barrier.
  void timeStep() {
    RegionScope Scope(C, 4);
    C.compute(work(4));
    C.allReduceSum(1.0 / (1.0 + Grid.interiorSum() * Grid.interiorSum()));
    double Token = static_cast<double>(Rank);
    if (Rank + 1 < Procs)
      C.sendData(Rank + 1, &Token, sizeof(Token), TagTimeStep);
    if (Rank > 0)
      C.recvData(Rank - 1, &Token, sizeof(Token), TagTimeStep);
    C.barrier();
  }

  // Loop 6: residual smoothing: small compute + halo + barrier
  // (optionally overlapped).
  void smoothing() {
    RegionScope Scope(C, 5);
    if (Config.OverlapHalo) {
      exchangeHaloOverlapped(TagSmoothUp, TagSmoothDown, Grid.ghostTop(),
                             Grid.ghostBottom(), Grid.topRow(),
                             Grid.bottomRow(), Grid.rowBytes(), [&] {
                               Grid.smooth();
                               C.compute(work(5));
                             });
    } else {
      Grid.smooth();
      C.compute(work(5));
      exchangeHalo(TagSmoothUp, TagSmoothDown, Grid.ghostTop(),
                   Grid.ghostBottom(), Grid.topRow(), Grid.bottomRow(),
                   Grid.rowBytes());
    }
    C.barrier();
  }

  // Loop 7: global statistics: tiny compute + rooted reduction.
  void statistics() {
    RegionScope Scope(C, 6);
    C.compute(work(6));
    C.reduceSum(0, Grid.interiorSum());
  }

  const CfdConfig &Config;
  Comm &C;
  unsigned Rank, Procs;
  unsigned CurrentIteration = 0;
  RankGrid Grid;
  std::vector<double> &ResidualHistory;
  std::mutex &HistoryMu;
};

} // namespace

Expected<CfdResult> cfd::runCfd(const CfdConfig &Config) {
  if (Config.Procs < 2)
    return makeStringError("the CFD program needs at least 2 ranks");
  if (Config.Nx < PipelineChunks)
    return makeStringError("Nx must be at least %u", PipelineChunks);
  if (Config.RowsPerRank == 0 || Config.Iterations == 0)
    return makeStringError("RowsPerRank and Iterations must be positive");

  sim::SimulationOptions Options;
  Options.NumProcs = Config.Procs;
  Options.Network = Config.Network;
  Options.RegionNames = cfdRegionNames();
  Options.ComputeSpeed = Config.ComputeSpeed;

  std::vector<double> ResidualHistory;
  std::mutex HistoryMu;
  auto TraceOrErr =
      sim::simulate(Options, [&](Comm &C) {
        CfdRankProgram Program(Config, C, ResidualHistory, HistoryMu);
        Program.run();
      });
  if (auto Err = TraceOrErr.takeError())
    return Err;

  CfdResult Result{std::move(*TraceOrErr), 0.0, std::move(ResidualHistory)};
  assert(Result.ResidualHistory.size() == Config.Iterations &&
         "one residual per iteration expected");
  Result.FinalResidual = Result.ResidualHistory.back();
  return Result;
}
