//===- apps/gallery/ParticleExchange.cpp - Migrating-load MD --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/ParticleExchange.h"
#include <cmath>

using namespace lima;
using namespace lima::gallery;
using sim::Comm;
using sim::RegionScope;

const std::vector<std::string> &gallery::particleExchangeRegionNames() {
  static const std::vector<std::string> Names = {"forces", "exchange"};
  return Names;
}

namespace {

enum Tags { TagMigrateCount = 20, TagMigrateBulk = 21 };

} // namespace

Expected<trace::Trace>
gallery::runParticleExchange(const ParticleExchangeConfig &Config) {
  if (Config.Procs < 2)
    return makeStringError("particle exchange needs at least 2 ranks");
  if (Config.Steps == 0 || Config.ParticlesPerRank == 0)
    return makeStringError("need positive step and particle counts");
  if (Config.MigrationFraction < 0.0 || Config.MigrationFraction > 1.0)
    return makeStringError("migration fraction must be in [0, 1]");

  sim::SimulationOptions Options;
  Options.NumProcs = Config.Procs;
  Options.Network = Config.Network;
  Options.RegionNames = particleExchangeRegionNames();

  return sim::simulate(Options, [&Config](Comm &C) {
    unsigned Rank = C.rank();
    unsigned Procs = C.size();
    double Particles = Config.ParticlesPerRank;
    for (unsigned Step = 0; Step != Config.Steps; ++Step) {
      {
        // Force computation proportional to the local population.
        RegionScope Scope(C, 0);
        C.compute(Particles * Config.SecondsPerParticle);
      }
      {
        // Migration: a fraction of particles moves one rank up (the
        // last rank keeps everything — the load piles up there).
        RegionScope Scope(C, 1);
        double Outgoing =
            Rank + 1 < Procs ? Particles * Config.MigrationFraction : 0.0;
        if (Rank + 1 < Procs) {
          // Count first, then the bulk particle payload.
          C.sendData(Rank + 1, &Outgoing, sizeof(Outgoing),
                     TagMigrateCount);
          C.send(Rank + 1,
                 static_cast<uint64_t>(
                     Outgoing * static_cast<double>(Config.BytesPerParticle)),
                 TagMigrateBulk);
        }
        double Incoming = 0.0;
        if (Rank > 0) {
          C.recvData(Rank - 1, &Incoming, sizeof(Incoming),
                     TagMigrateCount);
          C.recv(Rank - 1, TagMigrateBulk);
        }
        Particles += Incoming - Outgoing;
        // Neighbor-list rebuild cost for the newcomers.
        C.allToAll(Config.BytesPerParticle * 8);
      }
    }
  });
}
