//===- apps/gallery/ParticleExchange.h - Migrating-load MD ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A molecular-dynamics-shaped workload with *migrating* load: each rank
/// owns a particle population, computes forces proportionally to it,
/// exchanges boundary particles with an all-to-all, and a deterministic
/// migration rule drifts particles toward the high-rank end over time.
/// The aggregate view under-reports the imbalance of the late steps;
/// the phase (per-instance) analysis exposes the drift — this program is
/// the gallery's test case for core/PhaseAnalysis.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_APPS_GALLERY_PARTICLEEXCHANGE_H
#define LIMA_APPS_GALLERY_PARTICLEEXCHANGE_H

#include "sim/Simulation.h"
#include "support/Error.h"
#include "trace/Trace.h"

namespace lima {
namespace gallery {

/// Migrating-load configuration.
struct ParticleExchangeConfig {
  unsigned Procs = 16;
  /// Time steps.
  unsigned Steps = 12;
  /// Initial particles per rank.
  unsigned ParticlesPerRank = 1000;
  /// Compute seconds per particle per step.
  double SecondsPerParticle = 5e-5;
  /// Fraction of each rank's particles that migrates one rank up per
  /// step (0 = static, balanced forever).
  double MigrationFraction = 0.05;
  /// Bytes per particle in the exchange.
  uint64_t BytesPerParticle = 48;
  /// Interconnect model.
  sim::NetworkModel Network;
};

/// Region names ("forces", "exchange").
const std::vector<std::string> &particleExchangeRegionNames();

/// Runs the workload and returns the trace.
Expected<trace::Trace>
runParticleExchange(const ParticleExchangeConfig &Config);

} // namespace gallery
} // namespace lima

#endif // LIMA_APPS_GALLERY_PARTICLEEXCHANGE_H
