//===- apps/gallery/BspStencil.cpp - Bulk-synchronous stencil -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/BspStencil.h"

using namespace lima;
using namespace lima::gallery;
using sim::Comm;
using sim::RegionScope;

const std::vector<std::string> &gallery::bspStencilRegionNames() {
  static const std::vector<std::string> Names = {"superstep"};
  return Names;
}

namespace {

enum Tags { TagHaloUp = 10, TagHaloDown = 11 };

} // namespace

Expected<trace::Trace>
gallery::runBspStencil(const BspStencilConfig &Config) {
  if (Config.Procs < 2)
    return makeStringError("the BSP stencil needs at least 2 ranks");
  if (Config.Steps == 0 || Config.ComputeSeconds <= 0.0)
    return makeStringError("need positive step count and compute time");

  sim::SimulationOptions Options;
  Options.NumProcs = Config.Procs;
  Options.Network = Config.Network;
  Options.RegionNames = bspStencilRegionNames();

  return sim::simulate(Options, [&Config](Comm &C) {
    unsigned Rank = C.rank();
    unsigned Procs = C.size();
    // Linear work ramp: rank r computes (1 + Skew * r / (P-1)) base units.
    double Factor =
        1.0 + Config.Skew * static_cast<double>(Rank) /
                  static_cast<double>(Procs - 1);
    for (unsigned Step = 0; Step != Config.Steps; ++Step) {
      RegionScope Scope(C, 0);
      C.compute(Config.ComputeSeconds * Factor);
      if (Rank > 0)
        C.send(Rank - 1, Config.HaloBytes, TagHaloUp);
      if (Rank + 1 < Procs)
        C.send(Rank + 1, Config.HaloBytes, TagHaloDown);
      if (Rank > 0)
        C.recv(Rank - 1, TagHaloDown);
      if (Rank + 1 < Procs)
        C.recv(Rank + 1, TagHaloUp);
      C.barrier();
    }
  });
}
