//===- apps/gallery/MasterWorker.h - Task-farm workload ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A master-worker task farm: rank 0 deals tasks of varying size to
/// workers on demand (self-scheduling), workers compute and report back.
/// The classic *dynamically balanced* counterpart to the CFD code's
/// static decomposition — with enough tasks per worker the processor
/// times even out despite highly variable task sizes, while a
/// too-coarse task grain re-creates imbalance.  Part of the workload
/// gallery motivated by the paper's future work ("a large variety of
/// scientific programs").
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_APPS_GALLERY_MASTERWORKER_H
#define LIMA_APPS_GALLERY_MASTERWORKER_H

#include "sim/Simulation.h"
#include "support/Error.h"
#include "trace/Trace.h"

namespace lima {
namespace gallery {

/// Task-farm configuration.
struct MasterWorkerConfig {
  /// Total ranks; rank 0 is the master, the rest are workers.
  unsigned Procs = 16;
  /// Number of tasks to process.
  unsigned Tasks = 256;
  /// Mean task compute time, virtual seconds.
  double MeanTaskSeconds = 0.02;
  /// Log-normal sigma of the task-size distribution (0 = identical).
  double TaskSizeSigma = 0.8;
  /// Payload bytes per task / result message.
  uint64_t TaskBytes = 4096;
  /// RNG seed for the task sizes.
  uint64_t Seed = 7;
  /// Interconnect model.
  sim::NetworkModel Network;
};

/// Region names of the produced trace ("farm" only).
const std::vector<std::string> &masterWorkerRegionNames();

/// Runs the task farm and returns the trace.
Expected<trace::Trace> runMasterWorker(const MasterWorkerConfig &Config);

} // namespace gallery
} // namespace lima

#endif // LIMA_APPS_GALLERY_MASTERWORKER_H
