//===- apps/gallery/Decomposition.cpp - 1-D vs 2-D decomposition ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/Decomposition.h"
#include "support/Compiler.h"
#include <cmath>

using namespace lima;
using namespace lima::gallery;
using sim::Comm;
using sim::RegionScope;

std::string_view gallery::decompositionName(Decomposition Layout) {
  switch (Layout) {
  case Decomposition::Strips1D:
    return "1d-strips";
  case Decomposition::Blocks2D:
    return "2d-blocks";
  }
  lima_unreachable("unknown Decomposition");
}

const std::vector<std::string> &gallery::decompositionRegionNames() {
  static const std::vector<std::string> Names = {"stencil"};
  return Names;
}

namespace {

enum Tags { TagUp = 70, TagDown = 71, TagLeft = 72, TagRight = 73 };

/// Integer square root when exact, 0 otherwise.
unsigned exactSqrt(unsigned Value) {
  unsigned Root = static_cast<unsigned>(std::lround(std::sqrt(Value)));
  return Root * Root == Value ? Root : 0;
}

void runStrips(Comm &C, const DecompositionConfig &Config) {
  unsigned Rank = C.rank();
  unsigned Procs = C.size();
  double CellsOwned = static_cast<double>(Config.GridN) * Config.GridN /
                      Procs;
  uint64_t HaloBytes =
      static_cast<uint64_t>(Config.GridN) * Config.BytesPerCell;
  for (unsigned Step = 0; Step != Config.Steps; ++Step) {
    RegionScope Scope(C, 0);
    C.compute(CellsOwned * Config.SecondsPerCell);
    if (Rank > 0)
      C.send(Rank - 1, HaloBytes, TagUp);
    if (Rank + 1 < Procs)
      C.send(Rank + 1, HaloBytes, TagDown);
    if (Rank > 0)
      C.recv(Rank - 1, TagDown);
    if (Rank + 1 < Procs)
      C.recv(Rank + 1, TagUp);
  }
}

void runBlocks(Comm &C, const DecompositionConfig &Config, unsigned Side) {
  unsigned Rank = C.rank();
  unsigned Row = Rank / Side, Col = Rank % Side;
  double CellsOwned = static_cast<double>(Config.GridN) * Config.GridN /
                      C.size();
  uint64_t HaloBytes = static_cast<uint64_t>(Config.GridN / Side) *
                       Config.BytesPerCell;
  auto NeighborAt = [&](int DR, int DC) {
    return (Row + static_cast<unsigned>(DR)) * Side +
           (Col + static_cast<unsigned>(DC));
  };
  for (unsigned Step = 0; Step != Config.Steps; ++Step) {
    RegionScope Scope(C, 0);
    C.compute(CellsOwned * Config.SecondsPerCell);
    if (Row > 0)
      C.send(NeighborAt(-1, 0), HaloBytes, TagUp);
    if (Row + 1 < Side)
      C.send(NeighborAt(+1, 0), HaloBytes, TagDown);
    if (Col > 0)
      C.send(NeighborAt(0, -1), HaloBytes, TagLeft);
    if (Col + 1 < Side)
      C.send(NeighborAt(0, +1), HaloBytes, TagRight);
    if (Row > 0)
      C.recv(NeighborAt(-1, 0), TagDown);
    if (Row + 1 < Side)
      C.recv(NeighborAt(+1, 0), TagUp);
    if (Col > 0)
      C.recv(NeighborAt(0, -1), TagRight);
    if (Col + 1 < Side)
      C.recv(NeighborAt(0, +1), TagLeft);
  }
}

} // namespace

Expected<trace::Trace>
gallery::runDecomposition(const DecompositionConfig &Config) {
  if (Config.Procs < 2)
    return makeStringError("decomposition study needs at least 2 ranks");
  if (Config.Steps == 0 || Config.GridN == 0)
    return makeStringError("need positive step count and grid size");
  unsigned Side = 0;
  if (Config.Layout == Decomposition::Blocks2D) {
    Side = exactSqrt(Config.Procs);
    if (Side < 2)
      return makeStringError(
          "2-D blocks need a perfect-square rank count >= 4, got %u",
          Config.Procs);
    if (Config.GridN % Side != 0)
      return makeStringError("grid edge %u not divisible by sqrt(P) = %u",
                             Config.GridN, Side);
  }

  sim::SimulationOptions Options;
  Options.NumProcs = Config.Procs;
  Options.Network = Config.Network;
  Options.RegionNames = decompositionRegionNames();
  return sim::simulate(Options, [&Config, Side](Comm &C) {
    if (Config.Layout == Decomposition::Strips1D)
      runStrips(C, Config);
    else
      runBlocks(C, Config, Side);
  });
}
