//===- apps/gallery/MasterWorker.cpp - Task-farm workload -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/MasterWorker.h"
#include "support/RNG.h"
#include <cmath>

using namespace lima;
using namespace lima::gallery;
using sim::Comm;
using sim::RegionScope;

const std::vector<std::string> &gallery::masterWorkerRegionNames() {
  static const std::vector<std::string> Names = {"farm"};
  return Names;
}

namespace {

enum Tags {
  /// Worker -> master: ready / result.
  TagRequest = 1,
  /// Master -> worker: task payload (negative duration = stop).
  TagTask = 2,
};

/// Pre-generated task durations, identical on every rank (same seed).
std::vector<double> taskDurations(const MasterWorkerConfig &Config) {
  RNG Rng(Config.Seed);
  // Log-normal with the requested mean: mu = ln(mean) - sigma^2 / 2.
  double Mu = std::log(Config.MeanTaskSeconds) -
              Config.TaskSizeSigma * Config.TaskSizeSigma / 2.0;
  std::vector<double> Durations(Config.Tasks);
  for (double &D : Durations)
    D = Config.TaskSizeSigma > 0.0
            ? Rng.logNormal(Mu, Config.TaskSizeSigma)
            : Config.MeanTaskSeconds;
  return Durations;
}

void runMaster(Comm &C, const MasterWorkerConfig &Config) {
  RegionScope Scope(C, 0);
  std::vector<double> Tasks = taskDurations(Config);
  unsigned NextTask = 0;
  unsigned ActiveWorkers = C.size() - 1;
  const double Stop = -1.0;
  while (ActiveWorkers > 0) {
    Comm::RecvResult Request = C.recvAny(TagRequest);
    C.compute(2e-5); // Bookkeeping per message.
    if (NextTask < Tasks.size()) {
      double Duration = Tasks[NextTask++];
      C.sendData(Request.Source, &Duration, sizeof(Duration), TagTask);
    } else {
      C.sendData(Request.Source, &Stop, sizeof(Stop), TagTask);
      --ActiveWorkers;
    }
  }
}

void runWorker(Comm &C, const MasterWorkerConfig &Config) {
  RegionScope Scope(C, 0);
  C.send(0, Config.TaskBytes, TagRequest); // Announce readiness.
  while (true) {
    double Duration = 0.0;
    C.recvData(0, &Duration, sizeof(Duration), TagTask);
    if (Duration < 0.0)
      break;
    C.compute(Duration);
    C.send(0, Config.TaskBytes, TagRequest); // Report result, ask again.
  }
}

} // namespace

Expected<trace::Trace>
gallery::runMasterWorker(const MasterWorkerConfig &Config) {
  if (Config.Procs < 2)
    return makeStringError("the task farm needs a master and a worker");
  if (Config.Tasks == 0 || Config.MeanTaskSeconds <= 0.0)
    return makeStringError("need a positive task count and duration");

  sim::SimulationOptions Options;
  Options.NumProcs = Config.Procs;
  Options.Network = Config.Network;
  Options.RegionNames = masterWorkerRegionNames();
  return sim::simulate(Options, [&Config](Comm &C) {
    if (C.rank() == 0)
      runMaster(C, Config);
    else
      runWorker(C, Config);
  });
}
