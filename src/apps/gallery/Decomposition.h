//===- apps/gallery/Decomposition.h - 1-D vs 2-D decomposition --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stencil workload under two domain decompositions of the same
/// global N x N grid: 1-D strips (two neighbors, full-row halos) and
/// 2-D blocks (up to four neighbors, edge-length halos).  Strips pay
/// fewer latencies, blocks move less data — the classic surface-to-
/// volume crossover that moves with P and N, mapped by
/// bench/decomposition_crossover through the methodology's own
/// per-activity attribution.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_APPS_GALLERY_DECOMPOSITION_H
#define LIMA_APPS_GALLERY_DECOMPOSITION_H

#include "sim/Simulation.h"
#include "support/Error.h"
#include "trace/Trace.h"

namespace lima {
namespace gallery {

/// Decomposition layouts.
enum class Decomposition {
  /// Horizontal strips: neighbors above/below, halo = N cells.
  Strips1D,
  /// Square blocks (requires square P): four neighbors,
  /// halo = N / sqrt(P) cells per side.
  Blocks2D,
};

/// Human-readable layout name ("1d-strips" / "2d-blocks").
std::string_view decompositionName(Decomposition Layout);

/// Study configuration.
struct DecompositionConfig {
  /// Ranks; Blocks2D requires a perfect square.
  unsigned Procs = 16;
  /// Global grid edge (the domain is N x N cells).
  unsigned GridN = 512;
  /// Time steps.
  unsigned Steps = 10;
  /// Virtual compute seconds per owned cell per step.
  double SecondsPerCell = 2e-8;
  /// Bytes per halo cell.
  uint64_t BytesPerCell = 8;
  Decomposition Layout = Decomposition::Strips1D;
  sim::NetworkModel Network;
};

/// Region names ("stencil" only).
const std::vector<std::string> &decompositionRegionNames();

/// Runs the stencil under the configured layout and returns the trace.
Expected<trace::Trace> runDecomposition(const DecompositionConfig &Config);

} // namespace gallery
} // namespace lima

#endif // LIMA_APPS_GALLERY_DECOMPOSITION_H
