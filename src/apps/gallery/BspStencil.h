//===- apps/gallery/BspStencil.h - Bulk-synchronous stencil -----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bulk-synchronous (BSP) stencil code: every superstep is compute +
/// halo exchange + global barrier.  With a skewed work distribution the
/// barrier converts *all* compute imbalance into synchronization time —
/// the pathology the paper's synchronization activity measures.  The
/// contrast case to the task farm (which self-balances) and the CFD
/// code (whose waits surface as collective/p2p time).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_APPS_GALLERY_BSPSTENCIL_H
#define LIMA_APPS_GALLERY_BSPSTENCIL_H

#include "sim/Simulation.h"
#include "support/Error.h"
#include "trace/Trace.h"

namespace lima {
namespace gallery {

/// BSP stencil configuration.
struct BspStencilConfig {
  unsigned Procs = 16;
  /// Supersteps to run.
  unsigned Steps = 20;
  /// Base compute time per superstep, virtual seconds.
  double ComputeSeconds = 0.05;
  /// Relative extra work of the most loaded rank (linear ramp across
  /// ranks; 0 = perfectly balanced).
  double Skew = 0.5;
  /// Halo bytes exchanged with each neighbor per superstep.
  uint64_t HaloBytes = 8192;
  /// Interconnect model.
  sim::NetworkModel Network;
};

/// Region names ("superstep" only).
const std::vector<std::string> &bspStencilRegionNames();

/// Runs the BSP stencil and returns the trace.
Expected<trace::Trace> runBspStencil(const BspStencilConfig &Config);

} // namespace gallery
} // namespace lima

#endif // LIMA_APPS_GALLERY_BSPSTENCIL_H
