//===- cluster/KMeans.cpp - k-means clustering ----------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cluster/KMeans.h"
#include "cluster/Distance.h"
#include "support/Compiler.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/RNG.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

using namespace lima;
using namespace lima::cluster;

std::string_view cluster::kmeansInitName(KMeansInit Init) {
  switch (Init) {
  case KMeansInit::RandomPoints:
    return "random";
  case KMeansInit::PlusPlus:
    return "kmeans++";
  case KMeansInit::FarthestFirst:
    return "farthest-first";
  }
  lima_unreachable("unknown KMeansInit");
}

std::vector<std::vector<size_t>> KMeansResult::members() const {
  std::vector<std::vector<size_t>> Members(Centroids.size());
  for (size_t P = 0; P != Assignments.size(); ++P)
    Members[Assignments[P]].push_back(P);
  return Members;
}

namespace {

using Matrix = std::vector<std::vector<double>>;

/// Counts distinct points (exact comparison; adequate for seeding checks).
size_t countDistinct(const Matrix &Points) {
  std::set<std::vector<double>> Distinct(Points.begin(), Points.end());
  return Distinct.size();
}

Matrix initRandomPoints(const Matrix &Points, size_t K, RNG &Rng) {
  // Sample K distinct *positions* in a shuffled index array, skipping
  // duplicate coordinates so no two centroids coincide.
  std::vector<size_t> Order(Points.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  Rng.shuffle(Order);
  Matrix Centroids;
  for (size_t Index : Order) {
    if (Centroids.size() == K)
      break;
    if (std::find(Centroids.begin(), Centroids.end(), Points[Index]) ==
        Centroids.end())
      Centroids.push_back(Points[Index]);
  }
  return Centroids;
}

Matrix initPlusPlus(const Matrix &Points, size_t K, RNG &Rng) {
  Matrix Centroids;
  Centroids.push_back(Points[Rng.uniformInt(Points.size())]);
  std::vector<double> MinDist(Points.size());
  while (Centroids.size() < K) {
    double Total = 0.0;
    for (size_t P = 0; P != Points.size(); ++P) {
      double Best = std::numeric_limits<double>::infinity();
      for (const auto &C : Centroids)
        Best = std::min(Best, squaredEuclidean(Points[P], C));
      MinDist[P] = Best;
      Total += Best;
    }
    if (Total <= 0.0) {
      // All remaining points coincide with existing centroids; caller
      // verified there are K distinct points, so this cannot happen.
      lima_unreachable("kmeans++ found no candidate centroid");
    }
    double Target = Rng.uniform() * Total;
    size_t Chosen = Points.size() - 1;
    double Acc = 0.0;
    for (size_t P = 0; P != Points.size(); ++P) {
      Acc += MinDist[P];
      if (Acc >= Target && MinDist[P] > 0.0) {
        Chosen = P;
        break;
      }
    }
    Centroids.push_back(Points[Chosen]);
  }
  return Centroids;
}

Matrix initFarthestFirst(const Matrix &Points, size_t K, RNG &Rng) {
  Matrix Centroids;
  Centroids.push_back(Points[Rng.uniformInt(Points.size())]);
  while (Centroids.size() < K) {
    size_t Farthest = 0;
    double FarthestDist = -1.0;
    for (size_t P = 0; P != Points.size(); ++P) {
      double Best = std::numeric_limits<double>::infinity();
      for (const auto &C : Centroids)
        Best = std::min(Best, squaredEuclidean(Points[P], C));
      if (Best > FarthestDist) {
        FarthestDist = Best;
        Farthest = P;
      }
    }
    Centroids.push_back(Points[Farthest]);
  }
  return Centroids;
}

size_t nearestCentroid(const std::vector<double> &Point,
                       const Matrix &Centroids) {
  size_t Best = 0;
  double BestDist = std::numeric_limits<double>::infinity();
  for (size_t C = 0; C != Centroids.size(); ++C) {
    double Dist = squaredEuclidean(Point, Centroids[C]);
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = C;
    }
  }
  return Best;
}

double computeInertia(const Matrix &Points, const Matrix &Centroids,
                      const std::vector<size_t> &Assignments) {
  double Inertia = 0.0;
  for (size_t P = 0; P != Points.size(); ++P)
    Inertia += squaredEuclidean(Points[P], Centroids[Assignments[P]]);
  return Inertia;
}

/// One full k-means run (init + Lloyd + optional Hartigan pass).
KMeansResult runOnce(const Matrix &Points, const KMeansOptions &Options,
                     RNG &Rng) {
  size_t Dim = Points.front().size();
  Matrix Centroids;
  switch (Options.Init) {
  case KMeansInit::RandomPoints:
    Centroids = initRandomPoints(Points, Options.K, Rng);
    break;
  case KMeansInit::PlusPlus:
    Centroids = initPlusPlus(Points, Options.K, Rng);
    break;
  case KMeansInit::FarthestFirst:
    Centroids = initFarthestFirst(Points, Options.K, Rng);
    break;
  }
  assert(Centroids.size() == Options.K && "initialization came up short");

  std::vector<size_t> Assignments(Points.size(), 0);
  // The assignment step is the Lloyd hot path: a pure nearest-centroid
  // lookup per point, sharded across workers.  Each worker writes only
  // per-point slots, so the step is bit-identical to the serial loop.
  std::vector<unsigned char> ChangedSlot(Points.size(), 0);
  unsigned Iter = 0;
  for (; Iter != Options.MaxIterations; ++Iter) {
    LIMA_SPAN("kmeans.iteration");
    LIMA_COUNTER_ADD("kmeans.iterations", 1);
    LIMA_METRIC_COUNT("lima.kmeans.iterations_total", 1);
    std::fill(ChangedSlot.begin(), ChangedSlot.end(), 0);
    parallelFor(Points.size(), Options.Threads, [&](size_t P) {
      size_t Nearest = nearestCentroid(Points[P], Centroids);
      if (Nearest != Assignments[P]) {
        Assignments[P] = Nearest;
        ChangedSlot[P] = 1;
      }
    });
    bool Changed = std::find(ChangedSlot.begin(), ChangedSlot.end(), 1) !=
                   ChangedSlot.end();
    if (Iter != 0 && !Changed)
      break;

    // Recompute centroids; empty clusters are re-seeded on the point
    // farthest from its centroid, a standard repair that keeps K stable.
    Matrix NewCentroids(Options.K, std::vector<double>(Dim, 0.0));
    std::vector<size_t> Counts(Options.K, 0);
    for (size_t P = 0; P != Points.size(); ++P) {
      for (size_t D = 0; D != Dim; ++D)
        NewCentroids[Assignments[P]][D] += Points[P][D];
      ++Counts[Assignments[P]];
    }
    for (size_t C = 0; C != Options.K; ++C) {
      if (Counts[C] == 0) {
        size_t Farthest = 0;
        double FarthestDist = -1.0;
        for (size_t P = 0; P != Points.size(); ++P) {
          double Dist =
              squaredEuclidean(Points[P], Centroids[Assignments[P]]);
          if (Dist > FarthestDist) {
            FarthestDist = Dist;
            Farthest = P;
          }
        }
        NewCentroids[C] = Points[Farthest];
        Assignments[Farthest] = C;
        continue;
      }
      for (size_t D = 0; D != Dim; ++D)
        NewCentroids[C][D] /= static_cast<double>(Counts[C]);
    }
    Centroids = std::move(NewCentroids);
  }

  if (Options.HartiganRefinement) {
    // Hartigan-Wong style pass: move a single point when doing so lowers
    // the exact objective, accounting for the centroid shifts of both the
    // donor and the receiver cluster.
    std::vector<size_t> Counts(Options.K, 0);
    for (size_t A : Assignments)
      ++Counts[A];
    bool Improved = true;
    unsigned Guard = 0;
    while (Improved && Guard++ < 100) {
      Improved = false;
      for (size_t P = 0; P != Points.size(); ++P) {
        size_t From = Assignments[P];
        if (Counts[From] <= 1)
          continue;
        double NFrom = static_cast<double>(Counts[From]);
        double RemovalGain = NFrom / (NFrom - 1.0) *
                             squaredEuclidean(Points[P], Centroids[From]);
        for (size_t To = 0; To != Options.K; ++To) {
          if (To == From)
            continue;
          double NTo = static_cast<double>(Counts[To]);
          double InsertionCost = NTo / (NTo + 1.0) *
                                 squaredEuclidean(Points[P], Centroids[To]);
          if (InsertionCost < RemovalGain - 1e-12) {
            // Apply the move and update both centroids incrementally.
            size_t Dim2 = Points[P].size();
            for (size_t D = 0; D != Dim2; ++D) {
              Centroids[From][D] =
                  (Centroids[From][D] * NFrom - Points[P][D]) / (NFrom - 1.0);
              Centroids[To][D] =
                  (Centroids[To][D] * NTo + Points[P][D]) / (NTo + 1.0);
            }
            --Counts[From];
            ++Counts[To];
            Assignments[P] = To;
            Improved = true;
            break;
          }
        }
      }
    }
  }

  KMeansResult Result;
  Result.Assignments = std::move(Assignments);
  Result.Centroids = std::move(Centroids);
  Result.Inertia = computeInertia(Points, Result.Centroids,
                                  Result.Assignments);
  Result.Iterations = Iter;
  return Result;
}

} // namespace

Expected<KMeansResult>
cluster::kMeans(const Matrix &Points, const KMeansOptions &Options) {
  if (Options.K == 0)
    return makeStringError("k-means requires K >= 1");
  if (Points.empty())
    return makeStringError("k-means requires at least one point");
  size_t Dim = Points.front().size();
  for (const auto &Point : Points)
    if (Point.size() != Dim)
      return makeStringError("k-means points must share one dimension");
  if (countDistinct(Points) < Options.K)
    return makeStringError("k-means needs at least K=%zu distinct points",
                           Options.K);

  LIMA_SPAN("kmeans");
  RNG Rng(Options.Seed);
  KMeansResult Best;
  bool HaveBest = false;
  unsigned Restarts = std::max(1u, Options.Restarts);
  for (unsigned R = 0; R != Restarts; ++R) {
    KMeansResult Candidate = runOnce(Points, Options, Rng);
    if (!HaveBest || Candidate.Inertia < Best.Inertia) {
      Best = std::move(Candidate);
      HaveBest = true;
    }
  }
  return Best;
}
