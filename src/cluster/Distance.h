//===- cluster/Distance.h - Distance metrics --------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distance metrics over dense double vectors, shared by k-means,
/// hierarchical clustering and silhouette scoring.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CLUSTER_DISTANCE_H
#define LIMA_CLUSTER_DISTANCE_H

#include <string_view>
#include <vector>

namespace lima {
namespace cluster {

/// Supported distance metrics.
enum class Metric {
  Euclidean,
  SquaredEuclidean,
  Manhattan,
  Chebyshev,
};

/// Human-readable metric name.
std::string_view metricName(Metric M);

/// Distance between \p A and \p B under \p M; asserts on length mismatch.
double distance(Metric M, const std::vector<double> &A,
                const std::vector<double> &B);

/// Squared Euclidean distance (the k-means objective's natural metric).
double squaredEuclidean(const std::vector<double> &A,
                        const std::vector<double> &B);

} // namespace cluster
} // namespace lima

#endif // LIMA_CLUSTER_DISTANCE_H
