//===- cluster/Hierarchical.h - Agglomerative clustering --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agglomerative hierarchical clustering with single, complete and
/// average linkage.  Produces the full merge tree (dendrogram) which can
/// be cut at any cluster count — a robustness companion to k-means for
/// the region-grouping step of the methodology.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CLUSTER_HIERARCHICAL_H
#define LIMA_CLUSTER_HIERARCHICAL_H

#include "cluster/Distance.h"
#include "support/Error.h"
#include <string_view>
#include <vector>

namespace lima {
namespace cluster {

/// Linkage criteria for merging clusters.
enum class Linkage {
  /// Minimum pairwise distance.
  Single,
  /// Maximum pairwise distance.
  Complete,
  /// Unweighted average pairwise distance (UPGMA).
  Average,
};

/// Human-readable linkage name.
std::string_view linkageName(Linkage L);

/// One merge step of the dendrogram.  Nodes 0..N-1 are the input points;
/// merge i creates node N+i from its two children.
struct MergeStep {
  size_t Left;
  size_t Right;
  /// Linkage distance at which the merge happened.
  double Distance;
};

/// The full agglomeration history for N points (N-1 merges).
struct Dendrogram {
  size_t NumPoints = 0;
  std::vector<MergeStep> Merges;

  /// Cluster assignment obtained by cutting the tree to \p K clusters.
  /// Cluster ids are dense, assigned in order of first appearance.
  std::vector<size_t> cut(size_t K) const;
};

/// Clusters \p Points agglomeratively under \p Metric and \p Link.
Expected<Dendrogram>
hierarchicalCluster(const std::vector<std::vector<double>> &Points,
                    Metric DistanceMetric, Linkage Link);

} // namespace cluster
} // namespace lima

#endif // LIMA_CLUSTER_HIERARCHICAL_H
