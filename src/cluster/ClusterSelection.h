//===- cluster/ClusterSelection.h - Choosing the cluster count --*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Silhouette-based selection of the k-means cluster count: run k-means
/// for every K in [2, MaxK], keep the K with the best mean silhouette.
/// The paper fixes k = 2 for its 7 loops by inspection; this automates
/// the choice for larger region sets.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CLUSTER_CLUSTERSELECTION_H
#define LIMA_CLUSTER_CLUSTERSELECTION_H

#include "cluster/KMeans.h"
#include "support/Error.h"
#include <vector>

namespace lima {
namespace cluster {

/// Result of the K sweep.
struct ClusterCountChoice {
  /// The selected cluster count.
  size_t K = 2;
  /// Mean silhouette at the selected K.
  double Silhouette = 0.0;
  /// Silhouette of every candidate K (index 0 holds K = 2).
  std::vector<double> Sweep;
  /// The winning clustering itself.
  KMeansResult Result;
};

/// Sweeps K in [2, MaxK] (clamped to the number of distinct points) and
/// returns the silhouette-optimal clustering.  Fails when fewer than 2
/// distinct points exist.
Expected<ClusterCountChoice>
chooseClusterCount(const std::vector<std::vector<double>> &Points,
                   size_t MaxK, const KMeansOptions &BaseOptions = {});

} // namespace cluster
} // namespace lima

#endif // LIMA_CLUSTER_CLUSTERSELECTION_H
