//===- cluster/Silhouette.cpp - Clustering quality scores -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cluster/Silhouette.h"
#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace lima;
using namespace lima::cluster;

std::vector<double>
cluster::silhouetteValues(const std::vector<std::vector<double>> &Points,
                          const std::vector<size_t> &Assignments,
                          Metric DistanceMetric) {
  assert(Points.size() == Assignments.size() && "assignment size mismatch");
  size_t N = Points.size();
  size_t K = 0;
  for (size_t A : Assignments)
    K = std::max(K, A + 1);

  std::vector<size_t> Sizes(K, 0);
  for (size_t A : Assignments)
    ++Sizes[A];

  std::vector<double> Values(N, 0.0);
  for (size_t P = 0; P != N; ++P) {
    size_t Own = Assignments[P];
    if (Sizes[Own] <= 1)
      continue; // Singleton scores 0 by convention.
    // Mean distance to each cluster.
    std::vector<double> MeanDist(K, 0.0);
    for (size_t Q = 0; Q != N; ++Q) {
      if (Q == P)
        continue;
      MeanDist[Assignments[Q]] +=
          distance(DistanceMetric, Points[P], Points[Q]);
    }
    for (size_t C = 0; C != K; ++C) {
      size_t Denominator = C == Own ? Sizes[C] - 1 : Sizes[C];
      if (Denominator > 0)
        MeanDist[C] /= static_cast<double>(Denominator);
    }
    double A = MeanDist[Own];
    double B = std::numeric_limits<double>::infinity();
    for (size_t C = 0; C != K; ++C)
      if (C != Own && Sizes[C] > 0)
        B = std::min(B, MeanDist[C]);
    if (!std::isfinite(B))
      continue; // Only one non-empty cluster: undefined, score 0.
    double Denominator = std::max(A, B);
    Values[P] = Denominator > 0.0 ? (B - A) / Denominator : 0.0;
  }
  return Values;
}

double cluster::silhouetteScore(const std::vector<std::vector<double>> &Points,
                                const std::vector<size_t> &Assignments,
                                Metric DistanceMetric) {
  std::vector<double> Values =
      silhouetteValues(Points, Assignments, DistanceMetric);
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}
