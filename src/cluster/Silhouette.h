//===- cluster/Silhouette.h - Clustering quality scores ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Silhouette scores (Rousseeuw) for validating a clustering, plus a
/// simple elbow-style helper for choosing the cluster count when grouping
/// code regions.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CLUSTER_SILHOUETTE_H
#define LIMA_CLUSTER_SILHOUETTE_H

#include "cluster/Distance.h"
#include <vector>

namespace lima {
namespace cluster {

/// Per-point silhouette values in [-1, 1]; points in singleton clusters
/// score 0 by convention.
std::vector<double>
silhouetteValues(const std::vector<std::vector<double>> &Points,
                 const std::vector<size_t> &Assignments,
                 Metric DistanceMetric = Metric::Euclidean);

/// Mean silhouette over all points; higher is better separated.
double silhouetteScore(const std::vector<std::vector<double>> &Points,
                       const std::vector<size_t> &Assignments,
                       Metric DistanceMetric = Metric::Euclidean);

} // namespace cluster
} // namespace lima

#endif // LIMA_CLUSTER_SILHOUETTE_H
