//===- cluster/KMeans.h - k-means clustering --------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// k-means clustering (Hartigan, "Clustering Algorithms", 1975 — the
/// paper's reference [4]).  Lloyd iterations with a choice of
/// initialization strategies, plus an optional Hartigan-Wong style
/// single-point improvement pass.  Deterministic given the seed.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_CLUSTER_KMEANS_H
#define LIMA_CLUSTER_KMEANS_H

#include "support/Error.h"
#include <cstdint>
#include <string_view>
#include <vector>

namespace lima {
namespace cluster {

/// Centroid initialization strategies.
enum class KMeansInit {
  /// k distinct points chosen uniformly at random.
  RandomPoints,
  /// k-means++ (D^2-weighted) seeding.
  PlusPlus,
  /// Farthest-first traversal from a random start.
  FarthestFirst,
};

/// Human-readable init-strategy name.
std::string_view kmeansInitName(KMeansInit Init);

/// k-means configuration.
struct KMeansOptions {
  size_t K = 2;
  KMeansInit Init = KMeansInit::PlusPlus;
  /// Lloyd iteration cap.
  unsigned MaxIterations = 100;
  /// Number of independent restarts; the run with the lowest inertia wins.
  unsigned Restarts = 8;
  /// RNG seed; the same seed reproduces the same clustering.
  uint64_t Seed = 1;
  /// Run a Hartigan-Wong single-point improvement pass after Lloyd
  /// converges (can escape some Lloyd-stable local minima).
  bool HartiganRefinement = true;
  /// Worker threads for the assignment step (0 = all hardware threads,
  /// 1 = serial).  Assignments are pure per-point lookups written to
  /// per-point slots; centroid updates stay serial, so clusterings are
  /// bit-identical at any thread count.
  unsigned Threads = 0;
};

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster index of each input point.
  std::vector<size_t> Assignments;
  /// Final centroids, K x Dim.
  std::vector<std::vector<double>> Centroids;
  /// Sum of squared distances of points to their centroid.
  double Inertia = 0.0;
  /// Lloyd iterations used by the winning restart.
  unsigned Iterations = 0;

  /// Points in each cluster, in input order.
  std::vector<std::vector<size_t>> members() const;
};

/// Runs k-means over \p Points (each a vector of equal dimension).
///
/// Fails when there are fewer distinct points than K or K is 0.
Expected<KMeansResult> kMeans(const std::vector<std::vector<double>> &Points,
                              const KMeansOptions &Options);

} // namespace cluster
} // namespace lima

#endif // LIMA_CLUSTER_KMEANS_H
