//===- cluster/Distance.cpp - Distance metrics ----------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cluster/Distance.h"
#include "support/Compiler.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lima;
using namespace lima::cluster;

std::string_view cluster::metricName(Metric M) {
  switch (M) {
  case Metric::Euclidean:
    return "euclidean";
  case Metric::SquaredEuclidean:
    return "squared-euclidean";
  case Metric::Manhattan:
    return "manhattan";
  case Metric::Chebyshev:
    return "chebyshev";
  }
  lima_unreachable("unknown Metric");
}

double cluster::squaredEuclidean(const std::vector<double> &A,
                                 const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  double Acc = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    double D = A[I] - B[I];
    Acc += D * D;
  }
  return Acc;
}

double cluster::distance(Metric M, const std::vector<double> &A,
                         const std::vector<double> &B) {
  assert(A.size() == B.size() && "dimension mismatch");
  switch (M) {
  case Metric::Euclidean:
    return std::sqrt(squaredEuclidean(A, B));
  case Metric::SquaredEuclidean:
    return squaredEuclidean(A, B);
  case Metric::Manhattan: {
    double Acc = 0.0;
    for (size_t I = 0; I != A.size(); ++I)
      Acc += std::fabs(A[I] - B[I]);
    return Acc;
  }
  case Metric::Chebyshev: {
    double Max = 0.0;
    for (size_t I = 0; I != A.size(); ++I)
      Max = std::max(Max, std::fabs(A[I] - B[I]));
    return Max;
  }
  }
  lima_unreachable("unknown Metric");
}
