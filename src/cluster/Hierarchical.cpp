//===- cluster/Hierarchical.cpp - Agglomerative clustering ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cluster/Hierarchical.h"
#include "support/Compiler.h"
#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>

using namespace lima;
using namespace lima::cluster;

std::string_view cluster::linkageName(Linkage L) {
  switch (L) {
  case Linkage::Single:
    return "single";
  case Linkage::Complete:
    return "complete";
  case Linkage::Average:
    return "average";
  }
  lima_unreachable("unknown Linkage");
}

std::vector<size_t> Dendrogram::cut(size_t K) const {
  assert(K >= 1 && K <= NumPoints && "cut count out of range");
  // Replay merges until only K clusters remain, tracking cluster roots
  // with a union-find keyed on dendrogram node ids.
  size_t TotalNodes = NumPoints + Merges.size();
  std::vector<size_t> Parent(TotalNodes);
  for (size_t I = 0; I != TotalNodes; ++I)
    Parent[I] = I;
  auto find = [&](size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  size_t MergesToApply = NumPoints - K;
  assert(MergesToApply <= Merges.size() && "dendrogram too small for cut");
  for (size_t M = 0; M != MergesToApply; ++M) {
    size_t NewNode = NumPoints + M;
    Parent[find(Merges[M].Left)] = NewNode;
    Parent[find(Merges[M].Right)] = NewNode;
  }
  std::vector<size_t> Assignments(NumPoints);
  std::vector<size_t> RootToCluster(TotalNodes, SIZE_MAX);
  size_t NextCluster = 0;
  for (size_t P = 0; P != NumPoints; ++P) {
    size_t Root = find(P);
    if (RootToCluster[Root] == SIZE_MAX)
      RootToCluster[Root] = NextCluster++;
    Assignments[P] = RootToCluster[Root];
  }
  assert(NextCluster == K && "cut produced wrong cluster count");
  return Assignments;
}

Expected<Dendrogram>
cluster::hierarchicalCluster(const std::vector<std::vector<double>> &Points,
                             Metric DistanceMetric, Linkage Link) {
  if (Points.empty())
    return makeStringError("hierarchical clustering needs at least one point");
  size_t Dim = Points.front().size();
  for (const auto &Point : Points)
    if (Point.size() != Dim)
      return makeStringError("points must share one dimension");

  size_t N = Points.size();
  Dendrogram Tree;
  Tree.NumPoints = N;

  // Active clusters: dendrogram node id + member list.  The O(N^3) naive
  // scheme is fine at the problem sizes the methodology deals with
  // (regions per program, typically tens).
  struct Cluster {
    size_t Node;
    std::vector<size_t> Members;
  };
  std::vector<Cluster> Active;
  Active.reserve(N);
  for (size_t P = 0; P != N; ++P)
    Active.push_back({P, {P}});

  auto linkageDistance = [&](const Cluster &A, const Cluster &B) {
    double Best = Link == Linkage::Single
                      ? std::numeric_limits<double>::infinity()
                      : 0.0;
    double Sum = 0.0;
    for (size_t I : A.Members) {
      for (size_t J : B.Members) {
        double D = distance(DistanceMetric, Points[I], Points[J]);
        switch (Link) {
        case Linkage::Single:
          Best = std::min(Best, D);
          break;
        case Linkage::Complete:
          Best = std::max(Best, D);
          break;
        case Linkage::Average:
          Sum += D;
          break;
        }
      }
    }
    if (Link == Linkage::Average)
      return Sum / static_cast<double>(A.Members.size() * B.Members.size());
    return Best;
  };

  size_t NextNode = N;
  while (Active.size() > 1) {
    size_t BestA = 0, BestB = 1;
    double BestDist = std::numeric_limits<double>::infinity();
    for (size_t A = 0; A != Active.size(); ++A) {
      for (size_t B = A + 1; B != Active.size(); ++B) {
        double D = linkageDistance(Active[A], Active[B]);
        if (D < BestDist) {
          BestDist = D;
          BestA = A;
          BestB = B;
        }
      }
    }
    Tree.Merges.push_back(
        {Active[BestA].Node, Active[BestB].Node, BestDist});
    Cluster Merged;
    Merged.Node = NextNode++;
    Merged.Members = std::move(Active[BestA].Members);
    Merged.Members.insert(Merged.Members.end(),
                          Active[BestB].Members.begin(),
                          Active[BestB].Members.end());
    // Erase the higher index first so the lower stays valid.
    Active.erase(Active.begin() + static_cast<std::ptrdiff_t>(BestB));
    Active.erase(Active.begin() + static_cast<std::ptrdiff_t>(BestA));
    Active.push_back(std::move(Merged));
  }
  return Tree;
}
