//===- cluster/ClusterSelection.cpp - Choosing the cluster count ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cluster/ClusterSelection.h"
#include "cluster/Silhouette.h"
#include <set>

using namespace lima;
using namespace lima::cluster;

Expected<ClusterCountChoice>
cluster::chooseClusterCount(const std::vector<std::vector<double>> &Points,
                            size_t MaxK, const KMeansOptions &BaseOptions) {
  std::set<std::vector<double>> Distinct(Points.begin(), Points.end());
  if (Distinct.size() < 2)
    return makeStringError("cluster-count selection needs at least 2 "
                           "distinct points");
  size_t Limit = std::min(MaxK, Distinct.size());

  ClusterCountChoice Choice;
  bool HaveBest = false;
  for (size_t K = 2; K <= Limit; ++K) {
    KMeansOptions Options = BaseOptions;
    Options.K = K;
    auto ResultOrErr = kMeans(Points, Options);
    if (auto Err = ResultOrErr.takeError())
      return Err;
    double Score = silhouetteScore(Points, ResultOrErr->Assignments);
    Choice.Sweep.push_back(Score);
    if (!HaveBest || Score > Choice.Silhouette) {
      Choice.K = K;
      Choice.Silhouette = Score;
      Choice.Result = std::move(*ResultOrErr);
      HaveBest = true;
    }
  }
  return Choice;
}
