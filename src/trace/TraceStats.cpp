//===- trace/TraceStats.cpp - Descriptive trace statistics ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"
#include "support/Format.h"
#include "support/Parallel.h"
#include "support/TableFormatter.h"
#include <algorithm>

using namespace lima;
using namespace lima::trace;

namespace {

/// The cross-processor scalar aggregates, accumulated per processor and
/// merged in processor order.  Sums are integers and Span is a max, so
/// the merged totals do not depend on how processors were sharded.
struct ScalarTotals {
  std::vector<uint64_t> EventCounts = std::vector<uint64_t>(6, 0);
  uint64_t TotalEvents = 0;
  uint64_t TotalMessages = 0;
  uint64_t TotalBytes = 0;
  double Span = 0.0;
};

} // namespace

TraceStats trace::computeTraceStats(const Trace &T, unsigned Threads) {
  TraceStats Stats;
  Stats.EventCounts.assign(6, 0);
  Stats.Traffic.assign(T.numProcs(),
                       std::vector<PairTraffic>(T.numProcs()));
  Stats.RegionInstances.assign(T.numProcs(), 0);
  Stats.BusyTime.assign(T.numProcs(), 0.0);

  // Shard per processor.  Each worker writes only its processor's
  // Traffic row, RegionInstances and BusyTime cell, plus a private
  // ScalarTotals slot; the slots are merged serially below.
  std::vector<ScalarTotals> Totals(T.numProcs());
  parallelFor(T.numProcs(), Threads, [&](size_t Proc) {
    ScalarTotals &Local = Totals[Proc];
    double ActivityBeginTime = 0.0;
    bool ActivityOpen = false;
    // Column reads: Id and Bytes are only needed on MessageSend, so the
    // SoA layout streams mostly times and kinds.
    const Trace::EventsRef Stream =
        T.events(static_cast<unsigned>(Proc));
    const double *Times = Stream.times();
    const EventKind *Kinds = Stream.kinds();
    const uint32_t *Ids = Stream.ids();
    const uint64_t *Bytes = Stream.bytes();
    for (size_t I = 0; I != Stream.size(); ++I) {
      const double Time = Times[I];
      const EventKind Kind = Kinds[I];
      ++Local.EventCounts[static_cast<size_t>(Kind)];
      ++Local.TotalEvents;
      Local.Span = std::max(Local.Span, Time);
      switch (Kind) {
      case EventKind::RegionEnter:
        ++Stats.RegionInstances[Proc];
        break;
      case EventKind::ActivityBegin:
        ActivityBeginTime = Time;
        ActivityOpen = true;
        break;
      case EventKind::ActivityEnd:
        if (ActivityOpen)
          Stats.BusyTime[Proc] += Time - ActivityBeginTime;
        ActivityOpen = false;
        break;
      case EventKind::MessageSend: {
        PairTraffic &Pair = Stats.Traffic[Proc][Ids[I]];
        ++Pair.Messages;
        Pair.Bytes += Bytes[I];
        ++Local.TotalMessages;
        Local.TotalBytes += Bytes[I];
        break;
      }
      case EventKind::RegionExit:
      case EventKind::MessageRecv:
        break;
      }
    }
  });

  for (const ScalarTotals &Local : Totals) {
    for (size_t Kind = 0; Kind != Local.EventCounts.size(); ++Kind)
      Stats.EventCounts[Kind] += Local.EventCounts[Kind];
    Stats.TotalEvents += Local.TotalEvents;
    Stats.TotalMessages += Local.TotalMessages;
    Stats.TotalBytes += Local.TotalBytes;
    Stats.Span = std::max(Stats.Span, Local.Span);
  }
  return Stats;
}

std::string trace::renderCommunicationMatrix(const TraceStats &Stats) {
  size_t P = Stats.Traffic.size();
  std::vector<std::string> Header = {"from\\to"};
  for (size_t To = 0; To != P; ++To)
    Header.push_back("p" + std::to_string(To + 1));
  TextTable Table(std::move(Header));
  Table.setTitle("Point-to-point communication matrix (messages / bytes)");
  Table.setAlign(0, Align::Left);
  for (size_t From = 0; From != P; ++From) {
    std::vector<std::string> Row;
    Row.push_back("p" + std::to_string(From + 1));
    for (size_t To = 0; To != P; ++To) {
      const PairTraffic &Pair = Stats.Traffic[From][To];
      if (Pair.Messages == 0) {
        Row.push_back("-");
        continue;
      }
      Row.push_back(std::to_string(Pair.Messages) + "/" +
                    std::to_string(Pair.Bytes));
    }
    Table.addRow(std::move(Row));
  }
  return Table.toString();
}
