//===- trace/TraceStats.cpp - Descriptive trace statistics ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include <algorithm>

using namespace lima;
using namespace lima::trace;

TraceStats trace::computeTraceStats(const Trace &T) {
  TraceStats Stats;
  Stats.EventCounts.assign(6, 0);
  Stats.Traffic.assign(T.numProcs(),
                       std::vector<PairTraffic>(T.numProcs()));
  Stats.RegionInstances.assign(T.numProcs(), 0);
  Stats.BusyTime.assign(T.numProcs(), 0.0);

  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    double ActivityBeginTime = 0.0;
    bool ActivityOpen = false;
    for (const Event &E : T.events(Proc)) {
      ++Stats.EventCounts[static_cast<size_t>(E.Kind)];
      ++Stats.TotalEvents;
      Stats.Span = std::max(Stats.Span, E.Time);
      switch (E.Kind) {
      case EventKind::RegionEnter:
        ++Stats.RegionInstances[Proc];
        break;
      case EventKind::ActivityBegin:
        ActivityBeginTime = E.Time;
        ActivityOpen = true;
        break;
      case EventKind::ActivityEnd:
        if (ActivityOpen)
          Stats.BusyTime[Proc] += E.Time - ActivityBeginTime;
        ActivityOpen = false;
        break;
      case EventKind::MessageSend: {
        PairTraffic &Pair = Stats.Traffic[Proc][E.Id];
        ++Pair.Messages;
        Pair.Bytes += E.Bytes;
        ++Stats.TotalMessages;
        Stats.TotalBytes += E.Bytes;
        break;
      }
      case EventKind::RegionExit:
      case EventKind::MessageRecv:
        break;
      }
    }
  }
  return Stats;
}

std::string trace::renderCommunicationMatrix(const TraceStats &Stats) {
  size_t P = Stats.Traffic.size();
  std::vector<std::string> Header = {"from\\to"};
  for (size_t To = 0; To != P; ++To)
    Header.push_back("p" + std::to_string(To + 1));
  TextTable Table(std::move(Header));
  Table.setTitle("Point-to-point communication matrix (messages / bytes)");
  Table.setAlign(0, Align::Left);
  for (size_t From = 0; From != P; ++From) {
    std::vector<std::string> Row;
    Row.push_back("p" + std::to_string(From + 1));
    for (size_t To = 0; To != P; ++To) {
      const PairTraffic &Pair = Stats.Traffic[From][To];
      if (Pair.Messages == 0) {
        Row.push_back("-");
        continue;
      }
      Row.push_back(std::to_string(Pair.Messages) + "/" +
                    std::to_string(Pair.Bytes));
    }
    Table.addRow(std::move(Row));
  }
  return Table.toString();
}
