//===- trace/TextParserDetail.h - Sequential text-parse state ---*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential LIMATRACE text parser behind parseTraceText, exposed
/// as a class so parseTraceTextParallel can drive it in two phases:
/// parse the header prologue sequentially, shard the event section
/// across threads, and fall back to finishing sequentially whenever the
/// input does something sharding cannot reproduce bit-identically
/// (declarations after the first event, limits that could trip
/// mid-section).  Internal to lima_trace.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TEXTPARSERDETAIL_H
#define LIMA_TRACE_TEXTPARSERDETAIL_H

#include "support/ParseLimits.h"
#include "trace/TextScan.h"
#include "trace/Trace.h"
#include <optional>
#include <string_view>

namespace lima {
namespace trace {
namespace detail {

/// One sequential pass over LIMATRACE text.  Lines are consumed front
/// to back; position()/lineNumber() always point at the first
/// unconsumed line.
class TextTraceParser {
public:
  TextTraceParser(std::string_view Text, const ParseOptions &Options)
      : Text(Text), Options(Options) {}

  /// Consumes every remaining line.
  Error parseAll();

  /// Consumes header lines (magic, procs, declarations, blanks,
  /// comments) and stops — without consuming — at the first event line.
  Error parsePrologue();

  /// Final magic/procs checks plus ingestion metrics; moves the trace
  /// out.  Call exactly once, after parsing succeeded.
  Expected<Trace> take();

  /// True once every line (including a trailing unterminated one) has
  /// been consumed.
  bool atEnd() const { return Done; }

  /// Byte offset of the first unconsumed line.
  size_t position() const { return Pos; }

  /// 1-based number the next consumed line will get.
  size_t nextLineNumber() const { return LineNo + 1; }

  /// Table sizes events validate against (valid once the prologue ran).
  scan::EventTables tables() const;

  uint64_t allocBytes() const { return AllocBytes; }
  uint64_t totalEvents() const { return TotalEvents; }
  const ParseLimits &limits() const { return Options.Limits; }

  /// Folds the results of an externally parsed event section (the
  /// sharded path) into the final accounting, so take() reports the
  /// same totals the sequential pass would have.
  void noteShardedSection(uint64_t Lines, uint64_t Events, uint64_t Alloc) {
    LineNo += Lines;
    TotalEvents += Events;
    AllocBytes += Alloc;
    Done = true;
  }

  /// Appends \p E to the trace under construction (sharded merge).
  void appendEvent(const Event &E) { Result->append(E); }

private:
  /// Parses the line at Pos and advances past it.  Precondition:
  /// !atEnd().
  Error consumeLine();

  /// Classification of the line at Pos without consuming it.
  bool nextLineIsEvent() const;

  /// Publishes the locally counted event records into Options.Report.
  /// Attempted records accumulate in a member instead of going through
  /// the report pointer per line (that per-record store was the lenient
  /// overhead regression); every parse exit flushes, and zeroing makes
  /// repeated flushes harmless.
  void flushRecords() {
    if (Options.Report) {
      Options.Report->TotalRecords += Records;
      Records = 0;
    }
  }

  std::string_view Text;
  const ParseOptions &Options;
  size_t Pos = 0;
  size_t LineNo = 0;
  bool Done = false;
  bool SawMagic = false;
  std::optional<Trace> Result;
  uint64_t TotalEvents = 0;
  uint64_t AllocBytes = 0;
  uint64_t Records = 0;
};

} // namespace detail
} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TEXTPARSERDETAIL_H
