//===- trace/ParallelParse.cpp - Sharded LIMATRACE text parsing -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Structure of a parallel parse:
//
//   prologue   sequential TextTraceParser until the first event line
//   scan       shard the rest at newline boundaries; per shard, count
//              lines and look for stray directives (pass A, parallel)
//   parse      per shard, run the shared event-record grammar into
//              shard-local events + ParseReport (pass B, parallel)
//   merge      fold shard results back in shard order (sequential)
//
// Everything that could make the sharded result differ from the
// sequential one — a directive in the event section (it would mutate
// the tables later events validate against), or an event-count /
// allocation limit that could trip midway (the failing line depends on
// global position) — is caught after pass A and routed to the
// sequential parser instead.  That keeps the fast path simple and the
// equivalence argument airtight: shards only ever parse self-contained
// event lines against frozen tables, with limits proven untrippable up
// front.
//
//===----------------------------------------------------------------------===//

#include "trace/ParallelParse.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include "trace/TextParserDetail.h"
#include <cstring>
#include <optional>

using namespace lima;
using namespace lima::trace;

namespace {

/// Below this many event-section bytes the pool overhead outweighs the
/// parse; run sequentially.
constexpr size_t MinParallelBytes = 64 * 1024;

struct Shard {
  size_t Begin = 0; ///< Lines starting in [Begin, End) belong here.
  size_t End = 0;
  bool Last = false; ///< Owns the trailing unterminated segment.

  // Pass A results.
  uint64_t Lines = 0;
  bool SawDirective = false;

  // Pass B inputs/results.
  size_t FirstLineNo = 0; ///< 1-based number of the shard's first line.
  std::vector<Event> Events;
  ParseReport Report;
  std::optional<ParseError> Err;
};

/// Calls \p F(Begin, End) for every line segment starting in
/// [\p Begin, \p End), replicating splitString(Text, '\n') segmentation:
/// the shard marked Last additionally owns the final (possibly empty)
/// segment after the last '\n' of the input.  Stops early when \p F
/// returns false.
template <typename Fn>
void forEachSegment(std::string_view Text, const Shard &S, Fn &&F) {
  size_t Pos = S.Begin;
  bool Trailing = S.Last;
  while (Pos < S.End) {
    const void *Nl = std::memchr(Text.data() + Pos, '\n', S.End - Pos);
    if (!Nl) {
      // Unterminated final line; only the last shard can get here.
      F(Pos, S.End);
      return;
    }
    size_t SegEnd =
        static_cast<size_t>(static_cast<const char *>(Nl) - Text.data());
    if (!F(Pos, SegEnd))
      return;
    Pos = SegEnd + 1;
  }
  if (Trailing)
    F(S.End, S.End);
}

/// True when the first whitespace-delimited token of the segment is a
/// header directive, i.e. the sequential parser would not treat this
/// line as an event record.
bool isDirectiveLine(std::string_view Line) {
  Line = scan::skipLeadingSpace(Line);
  if (Line.empty())
    return false;
  // Directives all start with 'p', 'r' or 'a'; cheap reject first.
  char C = Line.front();
  if (C != 'p' && C != 'r' && C != 'a')
    return false;
  size_t TokEnd = 0;
  while (TokEnd < Line.size() && !scan::isSpaceByte(Line[TokEnd]))
    ++TokEnd;
  std::string_view Tok = Line.substr(0, TokEnd);
  return Tok == "procs" || Tok == "region" || Tok == "activity";
}

/// Pass A: line count + directive detection for one shard.
void scanShard(std::string_view Text, Shard &S) {
  forEachSegment(Text, S, [&](size_t Begin, size_t End) {
    ++S.Lines;
    if (!S.SawDirective &&
        isDirectiveLine(Text.substr(Begin, End - Begin)))
      S.SawDirective = true;
    return true;
  });
}

/// Pass B: parses one shard's event lines against the frozen \p Tables.
/// Limits that depend on global state (event count, allocation cap)
/// were proven untrippable before pass B started; the per-line length
/// limit is still enforced here and is fatal, exactly as in the
/// sequential parser.
void parseShard(std::string_view Text, Shard &S,
                const ParseOptions &Options,
                const scan::EventTables &Tables) {
  ParseOptions Local = Options;
  Local.Report = Options.Report ? &S.Report : nullptr;
  const ParseLimits &Limits = Options.Limits;
  size_t LineNo = S.FirstLineNo - 1;
  uint64_t Records = 0; // flushed to S.Report after the walk

  forEachSegment(Text, S, [&](size_t Begin, size_t End) {
    std::string_view RawLine = Text.substr(Begin, End - Begin);
    size_t LineOffset = Begin;
    ++LineNo;
    if (RawLine.size() > Limits.MaxLineBytes) {
      S.Err = makeParseError(ErrorCode::LimitExceeded, LineNo, LineOffset,
                             "trace line %zu: line exceeds the length limit",
                             LineNo)
                  .toParseError();
      return false;
    }
    std::string_view Line = scan::skipLeadingSpace(RawLine);
    if (Line.empty() || Line.front() == '#')
      return true;
    std::string_view Fields[scan::MaxFields];
    size_t NumFields = scan::splitFields(Line, Fields);
    ++Records;
    Event E;
    Error RecordErr =
        scan::parseEventRecord(Fields, NumFields, Tables, LineNo,
                               LineOffset, E);
    if (RecordErr) {
      ParseError PE = RecordErr.toParseError();
      if (PE.Code != ErrorCode::MissingSection && Local.dropRecord(PE))
        return true;
      S.Err = std::move(PE);
      return false;
    }
    S.Events.push_back(E);
    return true;
  });
  if (Local.Report)
    Local.Report->TotalRecords += Records;
}

} // namespace

Expected<Trace> trace::parseTraceTextParallel(std::string_view Text,
                                              const ParseOptions &Options,
                                              unsigned Threads) {
  Threads = resolveThreadCount(Threads);

  // Phase 1: the header prologue is inherently sequential (each
  // declaration changes the tables the next line validates against).
  detail::TextTraceParser Parser(Text, Options);
  if (auto Err = Parser.parsePrologue())
    return Err;
  scan::EventTables Tables = Parser.tables();
  size_t EvStart = Parser.position();
  size_t Remain = Text.size() - EvStart;
  if (Parser.atEnd() || !Tables.SawProcs || Threads <= 1 ||
      Remain < MinParallelBytes) {
    // Nothing shardable (or not worth sharding): finish sequentially.
    // !SawProcs means the next line fails with MissingSection; let the
    // sequential parser produce that error verbatim.
    if (auto Err = Parser.parseAll())
      return Err;
    return Parser.take();
  }

  // Phase 2: shard [EvStart, end) at newline boundaries.
  LIMA_STAGE("ingest");
  std::vector<Shard> Shards;
  {
    LIMA_SPAN("ingest.scan");
    size_t ChunkBytes = Remain / Threads;
    size_t Begin = EvStart;
    for (unsigned I = 0; I != Threads && Begin <= Text.size(); ++I) {
      Shard S;
      S.Begin = Begin;
      if (I + 1 == Threads) {
        S.End = Text.size();
      } else {
        size_t Target = std::min(EvStart + (I + 1) * ChunkBytes,
                                 Text.size());
        Target = std::max(Target, Begin);
        const void *Nl = std::memchr(Text.data() + Target, '\n',
                                     Text.size() - Target);
        S.End = Nl ? static_cast<size_t>(static_cast<const char *>(Nl) -
                                         Text.data()) +
                         1
                   : Text.size();
      }
      Begin = S.End;
      Shards.push_back(S);
    }
    Shards.back().End = Text.size();
    Shards.back().Last = true;

    // Pass A: count lines, look for stray directives.
    parallelFor(Shards.size(), Threads,
                [&](size_t I) { scanShard(Text, Shards[I]); });
  }

  uint64_t RemainLines = 0;
  bool SawDirective = false;
  for (const Shard &S : Shards) {
    RemainLines += S.Lines;
    SawDirective |= S.SawDirective;
  }

  // Sequential fallbacks: a directive mid-events mutates the tables
  // later events validate against, and a limit that could trip
  // mid-section fails on a line that depends on global event/byte
  // totals.  Both are position-dependent in a way shards cannot see,
  // so replay them through the sequential parser (bit-identical by
  // construction).  RemainLines over-approximates remaining events, so
  // passing these checks proves no shard can trip either limit.
  const ParseLimits &Limits = Options.Limits;
  if (SawDirective ||
      Parser.totalEvents() + RemainLines > Limits.MaxEvents ||
      Parser.allocBytes() + RemainLines * sizeof(Event) >
          Limits.MaxAllocBytes) {
    LIMA_METRIC_COUNT("lima.ingest.fallback_total", 1);
    if (auto Err = Parser.parseAll())
      return Err;
    return Parser.take();
  }

  // Phase 3: parse shards concurrently.
  {
    LIMA_SPAN("ingest.parse");
    size_t NextLine = Parser.nextLineNumber();
    for (Shard &S : Shards) {
      S.FirstLineNo = NextLine;
      NextLine += S.Lines;
    }
    parallelFor(Shards.size(), Threads, [&](size_t I) {
      parseShard(Text, Shards[I], Options, Tables);
    });
  }

  // Phase 4: merge in shard order.  The first erroring shard (lowest
  // byte offset) wins; its report — and those of the shards before it —
  // are exactly what the sequential parser would have accumulated up to
  // and including the failing line.
  LIMA_SPAN("ingest.merge");
  LIMA_METRIC_COUNT("lima.ingest.shards", Shards.size());
  uint64_t MergedEvents = 0;
  for (Shard &S : Shards) {
    if (Options.Report)
      Options.Report->merge(S.Report);
    if (S.Err)
      return Error::fromParse(std::move(*S.Err));
    MergedEvents += S.Events.size();
  }
  for (const Shard &S : Shards)
    for (const Event &E : S.Events)
      Parser.appendEvent(E);
  Parser.noteShardedSection(RemainLines, MergedEvents,
                            MergedEvents * sizeof(Event));
  return Parser.take();
}

Expected<Trace> trace::loadTraceParallel(const std::string &Path,
                                         const ParseOptions &Options,
                                         unsigned Threads) {
  auto FileOrErr = MappedFile::open(Path);
  if (auto Err = FileOrErr.takeError())
    return Err;
  return parseTraceTextParallel(FileOrErr->view(), Options, Threads);
}
