//===- trace/Timeline.h - ASCII execution timelines -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a trace as a per-processor ASCII timeline: time is split into
/// fixed-width buckets and each bucket shows the activity the processor
/// spent most of that bucket in.  The textual cousin of the space-time
/// diagrams of ParaGraph/Jumpshot cited by the paper; handy for a quick
/// visual sanity check before the quantitative analysis.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TIMELINE_H
#define LIMA_TRACE_TIMELINE_H

#include "trace/Trace.h"
#include <string>

namespace lima {
namespace trace {

/// Timeline rendering options.
struct TimelineOptions {
  /// Number of character buckets the span is divided into.
  unsigned Width = 72;
  /// Character for time outside any activity bracket.
  char IdleChar = ' ';
  /// Characters cycled through for activity ids 0, 1, 2, ...
  /// (default: the paper's four activities get c, p, C, s).
  std::string ActivityChars = "cpCs";
};

/// Renders one character row per processor plus a legend and a time
/// axis.  Each bucket shows the dominant activity of that time slice
/// (IdleChar when no activity covers a majority... strictly: the
/// activity covering the largest share, IdleChar when none overlaps).
std::string renderTimeline(const Trace &T, const TimelineOptions &Options = {});

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TIMELINE_H
