//===- trace/TraceStats.h - Descriptive trace statistics --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics computed directly on an event trace: event
/// counts by kind, per-processor activity totals, the point-to-point
/// communication matrix (messages and bytes between every pair of
/// processors) and span information.  These are the raw facts a
/// performance analyst inspects before the imbalance methodology runs.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TRACESTATS_H
#define LIMA_TRACE_TRACESTATS_H

#include "trace/Trace.h"
#include <cstdint>
#include <string>
#include <vector>

namespace lima {
namespace trace {

/// Point-to-point traffic between an ordered pair of processors.
struct PairTraffic {
  uint64_t Messages = 0;
  uint64_t Bytes = 0;
};

/// Aggregated statistics of one trace.
struct TraceStats {
  /// Number of events of each EventKind, indexed by the enum value.
  std::vector<uint64_t> EventCounts;
  /// Total events.
  uint64_t TotalEvents = 0;
  /// Largest event time (the program span).
  double Span = 0.0;
  /// [From][To] traffic of MessageSend events.
  std::vector<std::vector<PairTraffic>> Traffic;
  /// Total messages and bytes sent.
  uint64_t TotalMessages = 0;
  uint64_t TotalBytes = 0;
  /// Per-processor count of region instances executed.
  std::vector<uint64_t> RegionInstances;
  /// Per-processor busy time (sum of activity intervals).
  std::vector<double> BusyTime;

  /// Messages sent by \p From to \p To.
  const PairTraffic &traffic(unsigned From, unsigned To) const {
    return Traffic[From][To];
  }
};

/// Computes the statistics of \p T in one pass.  The trace need not be
/// validated first; unbalanced brackets simply truncate the affected
/// intervals.  Processor streams are sharded over \p Threads workers
/// (0 = all hardware threads, 1 = serial); per-processor rows are
/// written disjointly and the scalar totals are integer sums / maxima,
/// so the result is bit-identical at any thread count.
TraceStats computeTraceStats(const Trace &T, unsigned Threads = 0);

/// Renders the communication matrix as an aligned text table
/// ("messages/bytes" cells; "-" for idle pairs).
std::string renderCommunicationMatrix(const TraceStats &Stats);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TRACESTATS_H
