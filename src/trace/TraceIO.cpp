//===- trace/TraceIO.cpp - Text trace format ------------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"
#include "support/FileUtils.h"
#include "support/StringUtils.h"
#include <cstdio>
#include <optional>

using namespace lima;
using namespace lima::trace;

static void appendEventLine(std::string &Out, const Event &E) {
  char Buf[128];
  int Len;
  switch (E.Kind) {
  case EventKind::MessageSend:
  case EventKind::MessageRecv:
    Len = std::snprintf(Buf, sizeof(Buf), "%.*s %u %.9f %u %llu\n", 2,
                        eventKindMnemonic(E.Kind).data(), E.Proc, E.Time, E.Id,
                        static_cast<unsigned long long>(E.Bytes));
    break;
  default:
    Len = std::snprintf(Buf, sizeof(Buf), "%.*s %u %.9f %u\n", 2,
                        eventKindMnemonic(E.Kind).data(), E.Proc, E.Time,
                        E.Id);
    break;
  }
  Out.append(Buf, static_cast<size_t>(Len));
}

std::string trace::writeTraceText(const Trace &T) {
  std::string Out;
  Out += "LIMATRACE 1\n";
  Out += "procs " + std::to_string(T.numProcs()) + "\n";
  for (size_t I = 0; I != T.numRegions(); ++I)
    Out += "region " + std::to_string(I) + " " +
           T.regionName(static_cast<uint32_t>(I)) + "\n";
  for (size_t I = 0; I != T.numActivities(); ++I)
    Out += "activity " + std::to_string(I) + " " +
           T.activityName(static_cast<uint32_t>(I)) + "\n";
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    for (const Event &E : T.events(Proc))
      appendEventLine(Out, E);
  return Out;
}

static std::optional<EventKind> kindFromMnemonic(std::string_view Mnemonic) {
  if (Mnemonic == "re")
    return EventKind::RegionEnter;
  if (Mnemonic == "rx")
    return EventKind::RegionExit;
  if (Mnemonic == "ab")
    return EventKind::ActivityBegin;
  if (Mnemonic == "ae")
    return EventKind::ActivityEnd;
  if (Mnemonic == "ms")
    return EventKind::MessageSend;
  if (Mnemonic == "mr")
    return EventKind::MessageRecv;
  return std::nullopt;
}

Expected<Trace> trace::parseTraceText(std::string_view Text) {
  std::vector<std::string_view> Lines = splitString(Text, '\n');
  size_t LineNo = 0;

  auto fail = [&](const char *What) {
    return makeStringError("trace line %zu: %s", LineNo, What);
  };

  // Header.
  std::optional<Trace> Result;
  bool SawMagic = false;
  std::vector<std::pair<uint32_t, std::string>> Regions, Activities;

  for (const std::string_view RawLine : Lines) {
    ++LineNo;
    std::string_view Line = trimString(RawLine);
    if (Line.empty() || Line.front() == '#')
      continue;
    std::vector<std::string_view> Fields = splitWhitespace(Line);

    if (!SawMagic) {
      if (Fields.size() != 2 || Fields[0] != "LIMATRACE" || Fields[1] != "1")
        return fail("expected header 'LIMATRACE 1'");
      SawMagic = true;
      continue;
    }

    if (Fields[0] == "procs") {
      if (Result)
        return fail("duplicate 'procs' line");
      if (Fields.size() != 2)
        return fail("'procs' takes one argument");
      auto CountOrErr = parseUnsigned(Fields[1]);
      if (!CountOrErr)
        return CountOrErr.takeError();
      if (*CountOrErr == 0 || *CountOrErr > (1u << 20))
        return fail("processor count out of range");
      Result.emplace(static_cast<unsigned>(*CountOrErr));
      continue;
    }

    if (Fields[0] == "region" || Fields[0] == "activity") {
      if (!Result)
        return fail("'procs' must precede declarations");
      if (Fields.size() < 3)
        return fail("declaration needs an id and a name");
      auto IdOrErr = parseUnsigned(Fields[1]);
      if (!IdOrErr)
        return IdOrErr.takeError();
      auto &List = Fields[0] == "region" ? Regions : Activities;
      if (*IdOrErr != List.size())
        return fail("declaration ids must be dense and in order");
      List.emplace_back(static_cast<uint32_t>(*IdOrErr),
                        std::string(Fields[2]));
      // Register immediately so events can refer to it.
      if (Fields[0] == "region")
        Result->addRegion(std::string(Fields[2]));
      else
        Result->addActivity(std::string(Fields[2]));
      continue;
    }

    std::optional<EventKind> Kind = kindFromMnemonic(Fields[0]);
    if (!Kind)
      return fail("unknown record type");
    if (!Result)
      return fail("'procs' must precede events");
    bool IsMessage =
        *Kind == EventKind::MessageSend || *Kind == EventKind::MessageRecv;
    size_t Expect = IsMessage ? 5 : 4;
    if (Fields.size() != Expect)
      return fail("wrong field count for event");

    Event E;
    E.Kind = *Kind;
    auto ProcOrErr = parseUnsigned(Fields[1]);
    if (!ProcOrErr)
      return ProcOrErr.takeError();
    if (*ProcOrErr >= Result->numProcs())
      return fail("event processor out of range");
    E.Proc = static_cast<uint32_t>(*ProcOrErr);
    auto TimeOrErr = parseDouble(Fields[2]);
    if (!TimeOrErr)
      return TimeOrErr.takeError();
    if (*TimeOrErr < 0.0)
      return fail("event time must be non-negative");
    E.Time = *TimeOrErr;
    auto IdOrErr = parseUnsigned(Fields[3]);
    if (!IdOrErr)
      return IdOrErr.takeError();
    E.Id = static_cast<uint32_t>(*IdOrErr);
    switch (E.Kind) {
    case EventKind::RegionEnter:
    case EventKind::RegionExit:
      if (E.Id >= Result->numRegions())
        return fail("event region out of range");
      break;
    case EventKind::ActivityBegin:
    case EventKind::ActivityEnd:
      if (E.Id >= Result->numActivities())
        return fail("event activity out of range");
      break;
    case EventKind::MessageSend:
    case EventKind::MessageRecv:
      if (E.Id >= Result->numProcs())
        return fail("message peer out of range");
      break;
    }
    if (IsMessage) {
      auto BytesOrErr = parseUnsigned(Fields[4]);
      if (!BytesOrErr)
        return BytesOrErr.takeError();
      E.Bytes = *BytesOrErr;
    }
    Result->append(E);
  }

  if (!SawMagic)
    return makeStringError("trace: missing 'LIMATRACE 1' header");
  if (!Result)
    return makeStringError("trace: missing 'procs' line");
  return std::move(*Result);
}

Error trace::saveTrace(const Trace &T, const std::string &Path) {
  return writeFile(Path, writeTraceText(T));
}

Expected<Trace> trace::loadTrace(const std::string &Path) {
  auto TextOrErr = readFile(Path);
  if (auto Err = TextOrErr.takeError())
    return Err;
  return parseTraceText(*TextOrErr);
}
