//===- trace/TraceIO.cpp - Text trace format ------------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Two generations of the text parser live here on purpose:
//
//  - parseTraceText: the shipping single-pass scanner.  One walk over
//    the mapped bytes, an in-place field cursor (no per-line vector),
//    from_chars number parsing (TextScan.h) and the tightened
//    ParseLimits accounting.  The sequential engine is
//    detail::TextTraceParser so the sharded parser (ParallelParse.cpp)
//    can reuse it for the header prologue and as its exact-semantics
//    fallback.
//
//  - parseTraceTextLegacy: the frozen pre-fast-path implementation
//    (split-into-vectors, strtod).  It is the reference the golden
//    equivalence suite and bench/perf_parallel compare against; do not
//    "improve" it — its value is that it does not change.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"
#include "support/FileUtils.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "trace/TextParserDetail.h"
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>

using namespace lima;
using namespace lima::trace;

static void appendEventLine(std::string &Out, const Event &E) {
  char Buf[128];
  int Len;
  switch (E.Kind) {
  case EventKind::MessageSend:
  case EventKind::MessageRecv:
    Len = std::snprintf(Buf, sizeof(Buf), "%.*s %u %.9f %u %llu\n", 2,
                        eventKindMnemonic(E.Kind).data(), E.Proc, E.Time, E.Id,
                        static_cast<unsigned long long>(E.Bytes));
    break;
  default:
    Len = std::snprintf(Buf, sizeof(Buf), "%.*s %u %.9f %u\n", 2,
                        eventKindMnemonic(E.Kind).data(), E.Proc, E.Time,
                        E.Id);
    break;
  }
  Out.append(Buf, static_cast<size_t>(Len));
}

std::string trace::writeTraceText(const Trace &T) {
  std::string Out;
  Out += "LIMATRACE 1\n";
  Out += "procs " + std::to_string(T.numProcs()) + "\n";
  for (size_t I = 0; I != T.numRegions(); ++I)
    Out += "region " + std::to_string(I) + " " +
           T.regionName(static_cast<uint32_t>(I)) + "\n";
  for (size_t I = 0; I != T.numActivities(); ++I)
    Out += "activity " + std::to_string(I) + " " +
           T.activityName(static_cast<uint32_t>(I)) + "\n";
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    for (const Event &E : T.events(Proc))
      appendEventLine(Out, E);
  return Out;
}

//===----------------------------------------------------------------------===//
// The single-pass scanner (detail::TextTraceParser).
//===----------------------------------------------------------------------===//

namespace {

/// End of the line starting at \p Pos: index of the next '\n', or
/// Text.size() for the final (possibly empty) unterminated segment.
size_t lineEnd(std::string_view Text, size_t Pos) {
  const void *Nl =
      std::memchr(Text.data() + Pos, '\n', Text.size() - Pos);
  return Nl ? static_cast<size_t>(static_cast<const char *>(Nl) -
                                  Text.data())
            : Text.size();
}

} // namespace

scan::EventTables detail::TextTraceParser::tables() const {
  scan::EventTables T;
  if (Result) {
    T.SawProcs = true;
    T.NumProcs = Result->numProcs();
    T.NumRegions = Result->numRegions();
    T.NumActivities = Result->numActivities();
  }
  return T;
}

bool detail::TextTraceParser::nextLineIsEvent() const {
  size_t End = lineEnd(Text, Pos);
  std::string_view Line =
      scan::skipLeadingSpace(Text.substr(Pos, End - Pos));
  if (Line.empty() || Line.front() == '#')
    return false;
  if (!SawMagic)
    return false; // The first substantive line is the magic line.
  size_t TokEnd = 0;
  while (TokEnd < Line.size() && !scan::isSpaceByte(Line[TokEnd]))
    ++TokEnd;
  std::string_view Tok = Line.substr(0, TokEnd);
  return Tok != "procs" && Tok != "region" && Tok != "activity";
}

Error detail::TextTraceParser::consumeLine() {
  const ParseLimits &Limits = Options.Limits;
  size_t End = lineEnd(Text, Pos);
  std::string_view RawLine = Text.substr(Pos, End - Pos);
  size_t LineOffset = Pos;
  ++LineNo;
  if (End == Text.size())
    Done = true;
  else
    Pos = End + 1;

  auto fail = [&](ErrorCode Code, const char *What) {
    return makeParseError(Code, LineNo, LineOffset, "trace line %zu: %s",
                          LineNo, What);
  };
  auto failNumber = [&](Error E) {
    return makeParseError(ErrorCode::BadNumber, LineNo, LineOffset,
                          "trace line %zu: %s", LineNo, E.message().c_str());
  };

  if (RawLine.size() > Limits.MaxLineBytes)
    return fail(ErrorCode::LimitExceeded, "line exceeds the length limit");
  std::string_view Line = scan::skipLeadingSpace(RawLine);
  if (Line.empty() || Line.front() == '#')
    return Error::success();
  std::string_view Fields[scan::MaxFields];
  size_t NumFields = scan::splitFields(Line, Fields);

  if (!SawMagic) {
    if (NumFields == 2 && Fields[0] == "LIMATRACE" && Fields[1] != "1")
      return fail(ErrorCode::UnsupportedVersion,
                  "unsupported LIMATRACE version");
    if (NumFields != 2 || Fields[0] != "LIMATRACE" || Fields[1] != "1")
      return fail(ErrorCode::BadMagic, "expected header 'LIMATRACE 1'");
    SawMagic = true;
    return Error::success();
  }

  if (Fields[0] == "procs") {
    if (Result)
      return fail(ErrorCode::DuplicateDeclaration, "duplicate 'procs' line");
    if (NumFields != 2)
      return fail(ErrorCode::MalformedRecord, "'procs' takes one argument");
    auto CountOrErr = scan::scanUnsigned(Fields[1]);
    if (!CountOrErr)
      return failNumber(CountOrErr.takeError());
    if (*CountOrErr == 0 || *CountOrErr > (1u << 20))
      return fail(ErrorCode::ValueOutOfRange, "processor count out of range");
    if (*CountOrErr > Limits.MaxProcs)
      return fail(ErrorCode::LimitExceeded,
                  "processor count exceeds the limit");
    AllocBytes += *CountOrErr * sizeof(std::vector<Event>);
    if (AllocBytes > Limits.MaxAllocBytes)
      return fail(ErrorCode::LimitExceeded,
                  "processor table exceeds the allocation cap");
    Result.emplace(static_cast<unsigned>(*CountOrErr));
    return Error::success();
  }

  if (Fields[0] == "region" || Fields[0] == "activity") {
    if (!Result)
      return fail(ErrorCode::MissingSection,
                  "'procs' must precede declarations");
    if (NumFields < 3)
      return fail(ErrorCode::MalformedRecord,
                  "declaration needs an id and a name");
    auto IdOrErr = scan::scanUnsigned(Fields[1]);
    if (!IdOrErr)
      return failNumber(IdOrErr.takeError());
    bool IsRegion = Fields[0] == "region";
    size_t Declared =
        IsRegion ? Result->numRegions() : Result->numActivities();
    if (*IdOrErr != Declared)
      return fail(ErrorCode::MalformedRecord,
                  "declaration ids must be dense and in order");
    if (Declared >= (IsRegion ? Limits.MaxRegions : Limits.MaxActivities))
      return fail(ErrorCode::LimitExceeded,
                  "declaration count exceeds the limit");
    if (Fields[2].size() > Limits.MaxNameBytes)
      return fail(ErrorCode::LimitExceeded,
                  "declaration name exceeds the length limit");
    AllocBytes += scan::nameAllocCost(Fields[2].size());
    if (AllocBytes > Limits.MaxAllocBytes)
      return fail(ErrorCode::LimitExceeded,
                  "name tables exceed the allocation cap");
    // Register immediately so events can refer to it.
    if (IsRegion)
      Result->addRegion(std::string(Fields[2]));
    else
      Result->addActivity(std::string(Fields[2]));
    return Error::success();
  }

  // Everything else is an event record; in lenient mode a malformed
  // one is dropped instead of aborting the parse.  Attempted records
  // are counted locally and flushed to Options.Report on exit.
  ++Records;
  Event E;
  Error RecordErr = scan::parseEventRecord(Fields, NumFields, tables(),
                                           LineNo, LineOffset, E);
  if (RecordErr) {
    // 'procs' missing is a header problem, not a record problem:
    // nothing later can succeed, so it stays fatal in lenient mode.
    ParseError PE = RecordErr.toParseError();
    if (PE.Code != ErrorCode::MissingSection && Options.dropRecord(PE))
      return Error::success();
    return Error::fromParse(std::move(PE));
  }
  if (++TotalEvents > Limits.MaxEvents)
    return fail(ErrorCode::LimitExceeded, "event count exceeds the limit");
  AllocBytes += sizeof(Event);
  if (AllocBytes > Limits.MaxAllocBytes)
    return fail(ErrorCode::LimitExceeded,
                "event storage exceeds the allocation cap");
  Result->append(E);
  return Error::success();
}

Error detail::TextTraceParser::parseAll() {
  while (!Done)
    if (auto Err = consumeLine()) {
      flushRecords();
      return Err;
    }
  flushRecords();
  return Error::success();
}

Error detail::TextTraceParser::parsePrologue() {
  while (!Done && !nextLineIsEvent())
    if (auto Err = consumeLine()) {
      flushRecords();
      return Err;
    }
  flushRecords();
  return Error::success();
}

Expected<Trace> detail::TextTraceParser::take() {
  flushRecords();
  if (!SawMagic)
    return makeCodedError(ErrorCode::BadMagic,
                          "trace: missing 'LIMATRACE 1' header");
  if (!Result)
    return makeCodedError(ErrorCode::MissingSection,
                          "trace: missing 'procs' line");
  LIMA_METRIC_COUNT("lima.parse.text.events_total", TotalEvents);
  LIMA_METRIC_COUNT("lima.parse.text.lines_total", LineNo);
  return std::move(*Result);
}

Expected<Trace> trace::parseTraceText(std::string_view Text,
                                      const ParseOptions &Options) {
  detail::TextTraceParser Parser(Text, Options);
  if (auto Err = Parser.parseAll())
    return Err;
  return Parser.take();
}

//===----------------------------------------------------------------------===//
// The frozen reference parser.
//===----------------------------------------------------------------------===//

static std::optional<EventKind>
legacyKindFromMnemonic(std::string_view Mnemonic) {
  if (Mnemonic == "re")
    return EventKind::RegionEnter;
  if (Mnemonic == "rx")
    return EventKind::RegionExit;
  if (Mnemonic == "ab")
    return EventKind::ActivityBegin;
  if (Mnemonic == "ae")
    return EventKind::ActivityEnd;
  if (Mnemonic == "ms")
    return EventKind::MessageSend;
  if (Mnemonic == "mr")
    return EventKind::MessageRecv;
  return std::nullopt;
}

Expected<Trace> trace::parseTraceTextLegacy(std::string_view Text,
                                            const ParseOptions &Options) {
  const ParseLimits &Limits = Options.Limits;
  std::vector<std::string_view> Lines = splitString(Text, '\n');
  size_t LineNo = 0;
  size_t LineOffset = 0;

  auto fail = [&](ErrorCode Code, const char *What) {
    return makeParseError(Code, LineNo, LineOffset, "trace line %zu: %s",
                          LineNo, What);
  };
  // Re-locates a number-parse error (which knows the bad token but not
  // the line) onto the current line.
  auto failNumber = [&](Error E) {
    return makeParseError(ErrorCode::BadNumber, LineNo, LineOffset,
                          "trace line %zu: %s", LineNo, E.message().c_str());
  };

  // Header.
  std::optional<Trace> Result;
  bool SawMagic = false;
  uint64_t TotalEvents = 0;
  uint64_t AllocBytes = 0;

  for (const std::string_view RawLine : Lines) {
    ++LineNo;
    LineOffset = static_cast<size_t>(RawLine.data() - Text.data());
    if (RawLine.size() > Limits.MaxLineBytes)
      return fail(ErrorCode::LimitExceeded, "line exceeds the length limit");
    std::string_view Line = trimString(RawLine);
    if (Line.empty() || Line.front() == '#')
      continue;
    std::vector<std::string_view> Fields = splitWhitespace(Line);

    if (!SawMagic) {
      if (Fields.size() == 2 && Fields[0] == "LIMATRACE" && Fields[1] != "1")
        return fail(ErrorCode::UnsupportedVersion,
                    "unsupported LIMATRACE version");
      if (Fields.size() != 2 || Fields[0] != "LIMATRACE" || Fields[1] != "1")
        return fail(ErrorCode::BadMagic, "expected header 'LIMATRACE 1'");
      SawMagic = true;
      continue;
    }

    if (Fields[0] == "procs") {
      if (Result)
        return fail(ErrorCode::DuplicateDeclaration, "duplicate 'procs' line");
      if (Fields.size() != 2)
        return fail(ErrorCode::MalformedRecord, "'procs' takes one argument");
      auto CountOrErr = parseUnsigned(Fields[1]);
      if (!CountOrErr)
        return failNumber(CountOrErr.takeError());
      if (*CountOrErr == 0 || *CountOrErr > (1u << 20))
        return fail(ErrorCode::ValueOutOfRange,
                    "processor count out of range");
      if (*CountOrErr > Limits.MaxProcs)
        return fail(ErrorCode::LimitExceeded,
                    "processor count exceeds the limit");
      AllocBytes += *CountOrErr * sizeof(std::vector<Event>);
      if (AllocBytes > Limits.MaxAllocBytes)
        return fail(ErrorCode::LimitExceeded,
                    "processor table exceeds the allocation cap");
      Result.emplace(static_cast<unsigned>(*CountOrErr));
      continue;
    }

    if (Fields[0] == "region" || Fields[0] == "activity") {
      if (!Result)
        return fail(ErrorCode::MissingSection,
                    "'procs' must precede declarations");
      if (Fields.size() < 3)
        return fail(ErrorCode::MalformedRecord,
                    "declaration needs an id and a name");
      auto IdOrErr = parseUnsigned(Fields[1]);
      if (!IdOrErr)
        return failNumber(IdOrErr.takeError());
      bool IsRegion = Fields[0] == "region";
      size_t Declared =
          IsRegion ? Result->numRegions() : Result->numActivities();
      if (*IdOrErr != Declared)
        return fail(ErrorCode::MalformedRecord,
                    "declaration ids must be dense and in order");
      if (Declared >= (IsRegion ? Limits.MaxRegions : Limits.MaxActivities))
        return fail(ErrorCode::LimitExceeded,
                    "declaration count exceeds the limit");
      if (Fields[2].size() > Limits.MaxNameBytes)
        return fail(ErrorCode::LimitExceeded,
                    "declaration name exceeds the length limit");
      AllocBytes += Fields[2].size() + sizeof(std::string);
      if (AllocBytes > Limits.MaxAllocBytes)
        return fail(ErrorCode::LimitExceeded,
                    "name tables exceed the allocation cap");
      // Register immediately so events can refer to it.
      if (IsRegion)
        Result->addRegion(std::string(Fields[2]));
      else
        Result->addActivity(std::string(Fields[2]));
      continue;
    }

    // Everything else is an event record; in lenient mode a malformed
    // one is dropped instead of aborting the parse.
    if (Options.Report)
      ++Options.Report->TotalRecords;
    Event E;
    Error RecordErr = [&]() -> Error {
      std::optional<EventKind> Kind = legacyKindFromMnemonic(Fields[0]);
      if (!Kind)
        return fail(ErrorCode::MalformedRecord, "unknown record type");
      if (!Result)
        return fail(ErrorCode::MissingSection, "'procs' must precede events");
      bool IsMessage =
          *Kind == EventKind::MessageSend || *Kind == EventKind::MessageRecv;
      size_t Expect = IsMessage ? 5 : 4;
      if (Fields.size() != Expect)
        return fail(ErrorCode::MalformedRecord,
                    "wrong field count for event");

      E.Kind = *Kind;
      auto ProcOrErr = parseUnsigned(Fields[1]);
      if (!ProcOrErr)
        return failNumber(ProcOrErr.takeError());
      if (*ProcOrErr >= Result->numProcs())
        return fail(ErrorCode::ValueOutOfRange,
                    "event processor out of range");
      E.Proc = static_cast<uint32_t>(*ProcOrErr);
      auto TimeOrErr = parseDouble(Fields[2]);
      if (!TimeOrErr)
        return failNumber(TimeOrErr.takeError());
      // strtod accepts "inf" and "nan"; non-finite times break every
      // downstream time computation, so reject them at the boundary.
      if (!std::isfinite(*TimeOrErr) || *TimeOrErr < 0.0)
        return fail(ErrorCode::ValueOutOfRange,
                    "event time must be finite and non-negative");
      E.Time = *TimeOrErr;
      auto IdOrErr = parseUnsigned(Fields[3]);
      if (!IdOrErr)
        return failNumber(IdOrErr.takeError());
      if (*IdOrErr > UINT32_MAX)
        return fail(ErrorCode::ValueOutOfRange, "event id overflows u32");
      E.Id = static_cast<uint32_t>(*IdOrErr);
      switch (E.Kind) {
      case EventKind::RegionEnter:
      case EventKind::RegionExit:
        if (E.Id >= Result->numRegions())
          return fail(ErrorCode::ValueOutOfRange,
                      "event region out of range");
        break;
      case EventKind::ActivityBegin:
      case EventKind::ActivityEnd:
        if (E.Id >= Result->numActivities())
          return fail(ErrorCode::ValueOutOfRange,
                      "event activity out of range");
        break;
      case EventKind::MessageSend:
      case EventKind::MessageRecv:
        if (E.Id >= Result->numProcs())
          return fail(ErrorCode::ValueOutOfRange,
                      "message peer out of range");
        break;
      }
      if (IsMessage) {
        auto BytesOrErr = parseUnsigned(Fields[4]);
        if (!BytesOrErr)
          return failNumber(BytesOrErr.takeError());
        E.Bytes = *BytesOrErr;
      }
      return Error::success();
    }();
    if (RecordErr) {
      // 'procs' missing is a header problem, not a record problem:
      // nothing later can succeed, so it stays fatal in lenient mode.
      ParseError PE = RecordErr.toParseError();
      if (PE.Code != ErrorCode::MissingSection && Options.dropRecord(PE))
        continue;
      return Error::fromParse(std::move(PE));
    }
    if (++TotalEvents > Limits.MaxEvents)
      return fail(ErrorCode::LimitExceeded, "event count exceeds the limit");
    AllocBytes += sizeof(Event);
    if (AllocBytes > Limits.MaxAllocBytes)
      return fail(ErrorCode::LimitExceeded,
                  "event storage exceeds the allocation cap");
    Result->append(E);
  }

  if (!SawMagic)
    return makeCodedError(ErrorCode::BadMagic,
                          "trace: missing 'LIMATRACE 1' header");
  if (!Result)
    return makeCodedError(ErrorCode::MissingSection,
                          "trace: missing 'procs' line");
  return std::move(*Result);
}

Error trace::saveTrace(const Trace &T, const std::string &Path) {
  return writeFileAtomic(Path, writeTraceText(T));
}

Expected<Trace> trace::loadTrace(const std::string &Path,
                                 const ParseOptions &Options) {
  auto FileOrErr = MappedFile::open(Path);
  if (auto Err = FileOrErr.takeError())
    return Err;
  return parseTraceText(FileOrErr->view(), Options);
}
