//===- trace/StreamParser.cpp - Incremental LIMATRACE parser --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/StreamParser.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include <cmath>
#include <optional>

using namespace lima;
using namespace lima::trace;

StreamParser::StreamParser(ParseOptions Opts) : Options(std::move(Opts)) {}

static std::optional<EventKind> kindFromMnemonic(std::string_view Mnemonic) {
  if (Mnemonic == "re")
    return EventKind::RegionEnter;
  if (Mnemonic == "rx")
    return EventKind::RegionExit;
  if (Mnemonic == "ab")
    return EventKind::ActivityBegin;
  if (Mnemonic == "ae")
    return EventKind::ActivityEnd;
  if (Mnemonic == "ms")
    return EventKind::MessageSend;
  if (Mnemonic == "mr")
    return EventKind::MessageRecv;
  return std::nullopt;
}

Error StreamParser::parseLine(std::string_view RawLine,
                              std::vector<Event> &Out) {
  const ParseLimits &Limits = Options.Limits;
  ++LineNo;
  size_t LineOffset = StreamOffset;

  auto fail = [&](ErrorCode Code, const char *What) {
    return makeParseError(Code, LineNo, LineOffset, "trace line %zu: %s",
                          LineNo, What);
  };
  auto failNumber = [&](Error E) {
    return makeParseError(ErrorCode::BadNumber, LineNo, LineOffset,
                          "trace line %zu: %s", LineNo, E.message().c_str());
  };

  if (RawLine.size() > Limits.MaxLineBytes)
    return fail(ErrorCode::LimitExceeded, "line exceeds the length limit");
  std::string_view Line = trimString(RawLine);
  if (Line.empty() || Line.front() == '#')
    return Error::success();
  std::vector<std::string_view> Fields = splitWhitespace(Line);

  if (!SawMagic) {
    if (Fields.size() == 2 && Fields[0] == "LIMATRACE" && Fields[1] != "1")
      return fail(ErrorCode::UnsupportedVersion,
                  "unsupported LIMATRACE version");
    if (Fields.size() != 2 || Fields[0] != "LIMATRACE" || Fields[1] != "1")
      return fail(ErrorCode::BadMagic, "expected header 'LIMATRACE 1'");
    SawMagic = true;
    return Error::success();
  }

  if (Fields[0] == "procs") {
    if (SawProcs)
      return fail(ErrorCode::DuplicateDeclaration, "duplicate 'procs' line");
    if (Fields.size() != 2)
      return fail(ErrorCode::MalformedRecord, "'procs' takes one argument");
    auto CountOrErr = parseUnsigned(Fields[1]);
    if (!CountOrErr)
      return failNumber(CountOrErr.takeError());
    if (*CountOrErr == 0 || *CountOrErr > (1u << 20))
      return fail(ErrorCode::ValueOutOfRange, "processor count out of range");
    if (*CountOrErr > Limits.MaxProcs)
      return fail(ErrorCode::LimitExceeded,
                  "processor count exceeds the limit");
    SawProcs = true;
    NumProcs = static_cast<unsigned>(*CountOrErr);
    return Error::success();
  }

  if (Fields[0] == "region" || Fields[0] == "activity") {
    if (!SawProcs)
      return fail(ErrorCode::MissingSection,
                  "'procs' must precede declarations");
    if (Fields.size() < 3)
      return fail(ErrorCode::MalformedRecord,
                  "declaration needs an id and a name");
    auto IdOrErr = parseUnsigned(Fields[1]);
    if (!IdOrErr)
      return failNumber(IdOrErr.takeError());
    bool IsRegion = Fields[0] == "region";
    std::vector<std::string> &Table = IsRegion ? Regions : Activities;
    if (*IdOrErr != Table.size())
      return fail(ErrorCode::MalformedRecord,
                  "declaration ids must be dense and in order");
    if (Table.size() >= (IsRegion ? Limits.MaxRegions : Limits.MaxActivities))
      return fail(ErrorCode::LimitExceeded,
                  "declaration count exceeds the limit");
    if (Fields[2].size() > Limits.MaxNameBytes)
      return fail(ErrorCode::LimitExceeded,
                  "declaration name exceeds the length limit");
    AllocBytes += Fields[2].size() + sizeof(std::string);
    if (AllocBytes > Limits.MaxAllocBytes)
      return fail(ErrorCode::LimitExceeded,
                  "name tables exceed the allocation cap");
    Table.push_back(std::string(Fields[2]));
    return Error::success();
  }

  // Event record.
  if (Options.Report)
    ++Options.Report->TotalRecords;
  Event E;
  Error RecordErr = [&]() -> Error {
    std::optional<EventKind> Kind = kindFromMnemonic(Fields[0]);
    if (!Kind)
      return fail(ErrorCode::MalformedRecord, "unknown record type");
    if (!SawProcs)
      return fail(ErrorCode::MissingSection, "'procs' must precede events");
    bool IsMessage =
        *Kind == EventKind::MessageSend || *Kind == EventKind::MessageRecv;
    size_t Expect = IsMessage ? 5 : 4;
    if (Fields.size() != Expect)
      return fail(ErrorCode::MalformedRecord, "wrong field count for event");

    E.Kind = *Kind;
    auto ProcOrErr = parseUnsigned(Fields[1]);
    if (!ProcOrErr)
      return failNumber(ProcOrErr.takeError());
    if (*ProcOrErr >= NumProcs)
      return fail(ErrorCode::ValueOutOfRange, "event processor out of range");
    E.Proc = static_cast<uint32_t>(*ProcOrErr);
    auto TimeOrErr = parseDouble(Fields[2]);
    if (!TimeOrErr)
      return failNumber(TimeOrErr.takeError());
    // strtod accepts "inf" and "nan"; a non-finite time would propagate
    // into window arithmetic (floor casts, interval splitting) where it
    // causes undefined behavior or non-termination, so reject it here.
    if (!std::isfinite(*TimeOrErr) || *TimeOrErr < 0.0)
      return fail(ErrorCode::ValueOutOfRange,
                  "event time must be finite and non-negative");
    E.Time = *TimeOrErr;
    auto IdOrErr = parseUnsigned(Fields[3]);
    if (!IdOrErr)
      return failNumber(IdOrErr.takeError());
    if (*IdOrErr > UINT32_MAX)
      return fail(ErrorCode::ValueOutOfRange, "event id overflows u32");
    E.Id = static_cast<uint32_t>(*IdOrErr);
    switch (E.Kind) {
    case EventKind::RegionEnter:
    case EventKind::RegionExit:
      if (E.Id >= Regions.size())
        return fail(ErrorCode::ValueOutOfRange, "event region out of range");
      break;
    case EventKind::ActivityBegin:
    case EventKind::ActivityEnd:
      if (E.Id >= Activities.size())
        return fail(ErrorCode::ValueOutOfRange,
                    "event activity out of range");
      break;
    case EventKind::MessageSend:
    case EventKind::MessageRecv:
      if (E.Id >= NumProcs)
        return fail(ErrorCode::ValueOutOfRange, "message peer out of range");
      break;
    }
    if (IsMessage) {
      auto BytesOrErr = parseUnsigned(Fields[4]);
      if (!BytesOrErr)
        return failNumber(BytesOrErr.takeError());
      E.Bytes = *BytesOrErr;
    }
    return Error::success();
  }();
  if (RecordErr) {
    ParseError PE = RecordErr.toParseError();
    if (PE.Code != ErrorCode::MissingSection && Options.dropRecord(PE)) {
      LIMA_METRIC_COUNT("lima.stream.dropped_total", 1);
      return Error::success();
    }
    return Error::fromParse(std::move(PE));
  }
  if (++TotalEvents > Limits.MaxEvents)
    return fail(ErrorCode::LimitExceeded, "event count exceeds the limit");
  LIMA_METRIC_COUNT("lima.stream.events_total", 1);
  Out.push_back(E);
  return Error::success();
}

Error StreamParser::feed(std::string_view Bytes, std::vector<Event> &Out) {
  Buffer.append(Bytes);
  size_t Start = 0;
  for (;;) {
    size_t Newline = Buffer.find('\n', Start);
    if (Newline == std::string::npos)
      break;
    std::string_view Line(Buffer.data() + Start, Newline - Start);
    Error Err = parseLine(Line, Out);
    StreamOffset += Newline - Start + 1;
    Start = Newline + 1;
    if (Err) {
      Buffer.erase(0, Start);
      return Err;
    }
  }
  Buffer.erase(0, Start);
  // A partial line longer than the limit can never become valid; fail
  // now instead of buffering unboundedly.
  if (Buffer.size() > Options.Limits.MaxLineBytes)
    return makeParseError(ErrorCode::LimitExceeded, LineNo + 1, StreamOffset,
                          "trace line %zu: line exceeds the length limit",
                          LineNo + 1);
  return Error::success();
}

Error StreamParser::finish(std::vector<Event> &Out) {
  if (!Buffer.empty()) {
    std::string Last;
    Last.swap(Buffer);
    if (auto Err = parseLine(Last, Out))
      return Err;
    StreamOffset += Last.size();
  }
  if (!SawMagic)
    return makeCodedError(ErrorCode::BadMagic,
                          "trace: missing 'LIMATRACE 1' header");
  if (!SawProcs)
    return makeCodedError(ErrorCode::MissingSection,
                          "trace: missing 'procs' line");
  return Error::success();
}
