//===- trace/StreamParser.cpp - Incremental LIMATRACE parser --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/StreamParser.h"
#include "support/Metrics.h"
#include "trace/TextScan.h"

using namespace lima;
using namespace lima::trace;

StreamParser::StreamParser(ParseOptions Opts) : Options(std::move(Opts)) {}

Error StreamParser::parseLine(std::string_view RawLine,
                              std::vector<Event> &Out) {
  const ParseLimits &Limits = Options.Limits;
  ++LineNo;
  size_t LineOffset = StreamOffset;

  auto fail = [&](ErrorCode Code, const char *What) {
    return makeParseError(Code, LineNo, LineOffset, "trace line %zu: %s",
                          LineNo, What);
  };
  auto failNumber = [&](Error E) {
    return makeParseError(ErrorCode::BadNumber, LineNo, LineOffset,
                          "trace line %zu: %s", LineNo, E.message().c_str());
  };

  if (RawLine.size() > Limits.MaxLineBytes)
    return fail(ErrorCode::LimitExceeded, "line exceeds the length limit");
  std::string_view Line = scan::skipLeadingSpace(RawLine);
  if (Line.empty() || Line.front() == '#')
    return Error::success();
  std::string_view Fields[scan::MaxFields];
  size_t NumFields = scan::splitFields(Line, Fields);

  if (!SawMagic) {
    if (NumFields == 2 && Fields[0] == "LIMATRACE" && Fields[1] != "1")
      return fail(ErrorCode::UnsupportedVersion,
                  "unsupported LIMATRACE version");
    if (NumFields != 2 || Fields[0] != "LIMATRACE" || Fields[1] != "1")
      return fail(ErrorCode::BadMagic, "expected header 'LIMATRACE 1'");
    SawMagic = true;
    return Error::success();
  }

  if (Fields[0] == "procs") {
    if (SawProcs)
      return fail(ErrorCode::DuplicateDeclaration, "duplicate 'procs' line");
    if (NumFields != 2)
      return fail(ErrorCode::MalformedRecord, "'procs' takes one argument");
    auto CountOrErr = scan::scanUnsigned(Fields[1]);
    if (!CountOrErr)
      return failNumber(CountOrErr.takeError());
    if (*CountOrErr == 0 || *CountOrErr > (1u << 20))
      return fail(ErrorCode::ValueOutOfRange, "processor count out of range");
    if (*CountOrErr > Limits.MaxProcs)
      return fail(ErrorCode::LimitExceeded,
                  "processor count exceeds the limit");
    SawProcs = true;
    NumProcs = static_cast<unsigned>(*CountOrErr);
    return Error::success();
  }

  if (Fields[0] == "region" || Fields[0] == "activity") {
    if (!SawProcs)
      return fail(ErrorCode::MissingSection,
                  "'procs' must precede declarations");
    if (NumFields < 3)
      return fail(ErrorCode::MalformedRecord,
                  "declaration needs an id and a name");
    auto IdOrErr = scan::scanUnsigned(Fields[1]);
    if (!IdOrErr)
      return failNumber(IdOrErr.takeError());
    bool IsRegion = Fields[0] == "region";
    std::vector<std::string> &Table = IsRegion ? Regions : Activities;
    if (*IdOrErr != Table.size())
      return fail(ErrorCode::MalformedRecord,
                  "declaration ids must be dense and in order");
    if (Table.size() >= (IsRegion ? Limits.MaxRegions : Limits.MaxActivities))
      return fail(ErrorCode::LimitExceeded,
                  "declaration count exceeds the limit");
    if (Fields[2].size() > Limits.MaxNameBytes)
      return fail(ErrorCode::LimitExceeded,
                  "declaration name exceeds the length limit");
    AllocBytes += scan::nameAllocCost(Fields[2].size());
    if (AllocBytes > Limits.MaxAllocBytes)
      return fail(ErrorCode::LimitExceeded,
                  "name tables exceed the allocation cap");
    Table.push_back(std::string(Fields[2]));
    return Error::success();
  }

  // Event record: the grammar lives in scan::parseEventRecord, shared
  // with the batch and sharded parsers so the three cannot drift.
  if (Options.Report)
    ++Options.Report->TotalRecords;
  scan::EventTables Tables;
  Tables.SawProcs = SawProcs;
  Tables.NumProcs = NumProcs;
  Tables.NumRegions = Regions.size();
  Tables.NumActivities = Activities.size();
  Event E;
  Error RecordErr =
      scan::parseEventRecord(Fields, NumFields, Tables, LineNo, LineOffset, E);
  if (RecordErr) {
    ParseError PE = RecordErr.toParseError();
    if (PE.Code != ErrorCode::MissingSection && Options.dropRecord(PE)) {
      LIMA_METRIC_COUNT("lima.stream.dropped_total", 1);
      return Error::success();
    }
    return Error::fromParse(std::move(PE));
  }
  if (++TotalEvents > Limits.MaxEvents)
    return fail(ErrorCode::LimitExceeded, "event count exceeds the limit");
  LIMA_METRIC_COUNT("lima.stream.events_total", 1);
  Out.push_back(E);
  return Error::success();
}

Error StreamParser::feed(std::string_view Bytes, std::vector<Event> &Out) {
  Buffer.append(Bytes);
  size_t Start = 0;
  for (;;) {
    size_t Newline = Buffer.find('\n', Start);
    if (Newline == std::string::npos)
      break;
    std::string_view Line(Buffer.data() + Start, Newline - Start);
    Error Err = parseLine(Line, Out);
    StreamOffset += Newline - Start + 1;
    Start = Newline + 1;
    if (Err) {
      Buffer.erase(0, Start);
      return Err;
    }
  }
  Buffer.erase(0, Start);
  // A partial line longer than the limit can never become valid; fail
  // now instead of buffering unboundedly.
  if (Buffer.size() > Options.Limits.MaxLineBytes)
    return makeParseError(ErrorCode::LimitExceeded, LineNo + 1, StreamOffset,
                          "trace line %zu: line exceeds the length limit",
                          LineNo + 1);
  return Error::success();
}

Error StreamParser::finish(std::vector<Event> &Out) {
  if (!Buffer.empty()) {
    std::string Last;
    Last.swap(Buffer);
    if (auto Err = parseLine(Last, Out))
      return Err;
    StreamOffset += Last.size();
  }
  if (!SawMagic)
    return makeCodedError(ErrorCode::BadMagic,
                          "trace: missing 'LIMATRACE 1' header");
  if (!SawProcs)
    return makeCodedError(ErrorCode::MissingSection,
                          "trace: missing 'procs' line");
  return Error::success();
}
