//===- trace/Trace.cpp - Trace container and validation -------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"
#include "support/Compiler.h"
#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <tuple>

using namespace lima;
using namespace lima::trace;

Trace::Trace(unsigned NumProcs) : Streams(NumProcs) {
  assert(NumProcs > 0 && "trace needs at least one processor");
}

uint32_t Trace::addRegion(std::string Name) {
  assert(findRegion(Name) == InvalidId && "duplicate region name");
  RegionNames.push_back(std::move(Name));
  return static_cast<uint32_t>(RegionNames.size() - 1);
}

uint32_t Trace::addActivity(std::string Name) {
  assert(findActivity(Name) == InvalidId && "duplicate activity name");
  ActivityNames.push_back(std::move(Name));
  return static_cast<uint32_t>(ActivityNames.size() - 1);
}

const std::string &Trace::regionName(uint32_t Id) const {
  assert(Id < RegionNames.size() && "region id out of range");
  return RegionNames[Id];
}

const std::string &Trace::activityName(uint32_t Id) const {
  assert(Id < ActivityNames.size() && "activity id out of range");
  return ActivityNames[Id];
}

uint32_t Trace::findRegion(std::string_view Name) const {
  for (size_t I = 0; I != RegionNames.size(); ++I)
    if (RegionNames[I] == Name)
      return static_cast<uint32_t>(I);
  return InvalidId;
}

uint32_t Trace::findActivity(std::string_view Name) const {
  for (size_t I = 0; I != ActivityNames.size(); ++I)
    if (ActivityNames[I] == Name)
      return static_cast<uint32_t>(I);
  return InvalidId;
}

void Trace::append(const Event &E) {
  assert(E.Proc < Streams.size() && "event processor out of range");
  switch (E.Kind) {
  case EventKind::RegionEnter:
  case EventKind::RegionExit:
    assert(E.Id < RegionNames.size() && "event region out of range");
    break;
  case EventKind::ActivityBegin:
  case EventKind::ActivityEnd:
    assert(E.Id < ActivityNames.size() && "event activity out of range");
    break;
  case EventKind::MessageSend:
  case EventKind::MessageRecv:
    assert(E.Id < Streams.size() && "message peer out of range");
    break;
  }
  Stream &S = Streams[E.Proc];
  S.Times.push_back(E.Time);
  S.Kinds.push_back(E.Kind);
  S.Ids.push_back(E.Id);
  S.Bytes.push_back(E.Bytes);
}

Trace::EventsRef Trace::events(unsigned Proc) const {
  assert(Proc < Streams.size() && "processor out of range");
  return EventsRef(&Streams[Proc], Proc);
}

void Trace::resizeStream(unsigned Proc, size_t N) {
  assert(Proc < Streams.size() && "processor out of range");
  Streams[Proc].resize(N);
}

void Trace::truncateStream(unsigned Proc, size_t N) {
  assert(Proc < Streams.size() && "processor out of range");
  assert(N <= Streams[Proc].size() && "truncation cannot grow a stream");
  Streams[Proc].resize(N);
}

Trace::StreamColumns Trace::streamColumns(unsigned Proc) {
  assert(Proc < Streams.size() && "processor out of range");
  Stream &S = Streams[Proc];
  return {S.Times.data(), S.Kinds.data(), S.Ids.data(), S.Bytes.data()};
}

size_t Trace::numEvents() const {
  size_t Total = 0;
  for (const auto &Stream : Streams)
    Total += Stream.size();
  return Total;
}

Error Trace::validate() const {
  // Message matching: count (sender, receiver, bytes) triples from both
  // sides; they must agree.
  std::map<std::tuple<uint32_t, uint32_t, uint64_t>, int64_t> MessageBalance;

  for (unsigned Proc = 0; Proc != numProcs(); ++Proc) {
    const EventsRef Stream = events(Proc);
    double LastTime = 0.0;
    // Regions may nest (loops inside routines, statements inside loops);
    // exits must match the innermost open region.
    std::vector<uint32_t> RegionStack;
    int64_t ActivityDepth = 0;
    uint32_t OpenActivity = InvalidId;

    for (size_t I = 0; I != Stream.size(); ++I) {
      const Event &E = Stream[I];
      if (!std::isfinite(E.Time) || E.Time < 0.0)
        return makeCodedError(ErrorCode::ValueOutOfRange,
                              "proc %u event %zu: time %.9f is not finite "
                              "and non-negative",
                              Proc, I, E.Time);
      if (E.Time + 1e-12 < LastTime)
        return makeCodedError(
            ErrorCode::StructuralError,
            "proc %u event %zu: time goes backwards (%.9f after %.9f)", Proc,
            I, E.Time, LastTime);
      LastTime = std::max(LastTime, E.Time);

      switch (E.Kind) {
      case EventKind::RegionEnter:
        if (ActivityDepth != 0)
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: region enters while an "
                                "activity is open",
                                Proc, I);
        RegionStack.push_back(E.Id);
        break;
      case EventKind::RegionExit:
        if (RegionStack.empty())
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: region exit without "
                                "matching enter",
                                Proc, I);
        if (E.Id != RegionStack.back())
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: region exit id %u does "
                                "not match innermost open region %u",
                                Proc, I, E.Id, RegionStack.back());
        if (ActivityDepth != 0)
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: region exits while an "
                                "activity is open",
                                Proc, I);
        RegionStack.pop_back();
        break;
      case EventKind::ActivityBegin:
        if (RegionStack.empty())
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: activity begins outside "
                                "any region",
                                Proc, I);
        if (ActivityDepth != 0)
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: overlapping activities",
                                Proc, I);
        ActivityDepth = 1;
        OpenActivity = E.Id;
        break;
      case EventKind::ActivityEnd:
        if (ActivityDepth != 1)
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: activity end without "
                                "matching begin",
                                Proc, I);
        if (E.Id != OpenActivity)
          return makeCodedError(ErrorCode::StructuralError,
                                "proc %u event %zu: activity end id %u does "
                                "not match open activity %u",
                                Proc, I, E.Id, OpenActivity);
        ActivityDepth = 0;
        OpenActivity = InvalidId;
        break;
      case EventKind::MessageSend:
        ++MessageBalance[{Proc, E.Id, E.Bytes}];
        break;
      case EventKind::MessageRecv:
        --MessageBalance[{E.Id, Proc, E.Bytes}];
        break;
      }
    }
    if (!RegionStack.empty())
      return makeCodedError(ErrorCode::StructuralError,
                            "proc %u: region left open at end of trace",
                            Proc);
    if (ActivityDepth != 0)
      return makeCodedError(ErrorCode::StructuralError,
                            "proc %u: activity left open at end of trace",
                            Proc);
  }

  for (const auto &[Key, Balance] : MessageBalance) {
    if (Balance == 0)
      continue;
    auto [From, To, Bytes] = Key;
    return makeCodedError(ErrorCode::StructuralError,
                          "unmatched message %u -> %u (%llu bytes): "
                          "balance %lld",
                          From, To, static_cast<unsigned long long>(Bytes),
                          static_cast<long long>(Balance));
  }
  return Error::success();
}
