//===- trace/TextScan.h - LIMATRACE text scanning primitives ----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation-free scanning core shared by every LIMATRACE text
/// consumer — the batch parser (parseTraceText), the sharded parallel
/// parser (parseTraceTextParallel) and the incremental StreamParser.
/// Three layers:
///
///  - splitFields: an in-place cursor tokenizer that replaces the
///    per-line splitWhitespace() vector (one heap allocation per line)
///    with a fixed field array on the caller's stack;
///  - scanUnsigned / scanDouble: std::from_chars fast paths that fall
///    back to the historical strtoX-based StringUtils parsers whenever
///    from_chars does not cleanly consume the token, so the accepted
///    grammar, the produced values and the BadNumber error messages are
///    bit-identical to the pre-fast-path parsers (leading '+', hex
///    floats, out-of-range and subnormal handling all route through the
///    old code);
///  - parseEventRecord: the one event-record grammar, shared so the
///    three consumers cannot drift apart in error codes, messages or
///    range checks.
///
/// Everything here is internal to lima_trace; no stability promises.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TEXTSCAN_H
#define LIMA_TRACE_TEXTSCAN_H

#include "support/Error.h"
#include "support/StringUtils.h"
#include "trace/Event.h"
#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lima {
namespace trace {
namespace scan {

/// The C-locale isspace() set, which is what splitWhitespace() and
/// trimString() match under the never-changed default locale.
inline bool isSpaceByte(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\v' || C == '\f' ||
         C == '\r';
}

/// Widest record is a message event (5 fields); one extra slot lets
/// every "wrong field count" check distinguish <= 5 from "too many".
inline constexpr size_t MaxFields = 6;

/// Tokenizes \p Line on whitespace runs into \p Fields[0..MaxFields).
/// Returns the number of fields stored, saturating at MaxFields (a
/// return of MaxFields means "MaxFields or more"); every grammar check
/// compares against counts <= 5, so saturation never changes a verdict.
inline size_t splitFields(std::string_view Line, std::string_view *Fields) {
  size_t N = 0;
  const char *P = Line.data();
  const char *End = P + Line.size();
  while (P != End) {
    while (P != End && isSpaceByte(*P))
      ++P;
    const char *Tok = P;
    while (P != End && !isSpaceByte(*P))
      ++P;
    if (P == Tok)
      break;
    Fields[N++] = std::string_view(Tok, static_cast<size_t>(P - Tok));
    if (N == MaxFields)
      break;
  }
  return N;
}

/// Left-trim only: line classification ("blank or comment?") never
/// looks past the first non-space byte.
inline std::string_view skipLeadingSpace(std::string_view Str) {
  size_t Begin = 0;
  while (Begin < Str.size() && isSpaceByte(Str[Begin]))
    ++Begin;
  return Str.substr(Begin);
}

/// parseUnsigned() semantics at from_chars speed.  Tokens from_chars
/// does not cleanly consume (leading '+', embedded 'x', overflow) are
/// re-parsed by the historical strtoull path so the accept set and the
/// error messages stay identical.
inline Expected<uint64_t> scanUnsigned(std::string_view Tok) {
  uint64_t Value;
  auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), Value);
  if (Ec == std::errc() && Ptr == Tok.data() + Tok.size())
    return Value;
  return parseUnsigned(Tok);
}

/// parseDouble() semantics at from_chars speed.  The fallback covers
/// everything from_chars and strtod disagree on: '+' signs, hex floats,
/// overflow/underflow (strtod's ERANGE becomes BadNumber) and subnormal
/// results (glibc flags those ERANGE too, from_chars does not).
inline Expected<double> scanDouble(std::string_view Tok) {
  double Value;
  auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), Value);
  if (Ec == std::errc() && Ptr == Tok.data() + Tok.size() &&
      (Value == 0.0 || std::fpclassify(Value) != FP_SUBNORMAL))
    return Value;
  return parseDouble(Tok);
}

/// Event mnemonic table ("re", "rx", "ab", "ae", "ms", "mr").
inline std::optional<EventKind> kindFromMnemonic(std::string_view Mnemonic) {
  if (Mnemonic == "re")
    return EventKind::RegionEnter;
  if (Mnemonic == "rx")
    return EventKind::RegionExit;
  if (Mnemonic == "ab")
    return EventKind::ActivityBegin;
  if (Mnemonic == "ae")
    return EventKind::ActivityEnd;
  if (Mnemonic == "ms")
    return EventKind::MessageSend;
  if (Mnemonic == "mr")
    return EventKind::MessageRecv;
  return std::nullopt;
}

/// The name tables an event record validates against.  Parsers that
/// build a Trace pass the trace's table sizes; the stream parser passes
/// its own vectors' sizes.
struct EventTables {
  bool SawProcs = false;
  unsigned NumProcs = 0;
  size_t NumRegions = 0;
  size_t NumActivities = 0;
};

/// Parses \p Fields[0..NumFields) as one event record into \p E.
/// Grammar, range checks, error codes and messages are the historical
/// per-line parser's, verbatim; callers own drop-vs-abort policy.
inline Error parseEventRecord(const std::string_view *Fields,
                              size_t NumFields, const EventTables &Tables,
                              size_t LineNo, size_t LineOffset, Event &E) {
  auto fail = [&](ErrorCode Code, const char *What) {
    return makeParseError(Code, LineNo, LineOffset, "trace line %zu: %s",
                          LineNo, What);
  };
  auto failNumber = [&](Error Err) {
    return makeParseError(ErrorCode::BadNumber, LineNo, LineOffset,
                          "trace line %zu: %s", LineNo,
                          Err.message().c_str());
  };

  std::optional<EventKind> Kind = kindFromMnemonic(Fields[0]);
  if (!Kind)
    return fail(ErrorCode::MalformedRecord, "unknown record type");
  if (!Tables.SawProcs)
    return fail(ErrorCode::MissingSection, "'procs' must precede events");
  bool IsMessage =
      *Kind == EventKind::MessageSend || *Kind == EventKind::MessageRecv;
  size_t Expect = IsMessage ? 5 : 4;
  if (NumFields != Expect)
    return fail(ErrorCode::MalformedRecord, "wrong field count for event");

  E.Kind = *Kind;
  auto ProcOrErr = scanUnsigned(Fields[1]);
  if (!ProcOrErr)
    return failNumber(ProcOrErr.takeError());
  if (*ProcOrErr >= Tables.NumProcs)
    return fail(ErrorCode::ValueOutOfRange, "event processor out of range");
  E.Proc = static_cast<uint32_t>(*ProcOrErr);
  auto TimeOrErr = scanDouble(Fields[2]);
  if (!TimeOrErr)
    return failNumber(TimeOrErr.takeError());
  // "inf" and "nan" parse as numbers; non-finite times break every
  // downstream time computation, so reject them at the boundary.
  if (!std::isfinite(*TimeOrErr) || *TimeOrErr < 0.0)
    return fail(ErrorCode::ValueOutOfRange,
                "event time must be finite and non-negative");
  E.Time = *TimeOrErr;
  auto IdOrErr = scanUnsigned(Fields[3]);
  if (!IdOrErr)
    return failNumber(IdOrErr.takeError());
  if (*IdOrErr > UINT32_MAX)
    return fail(ErrorCode::ValueOutOfRange, "event id overflows u32");
  E.Id = static_cast<uint32_t>(*IdOrErr);
  switch (E.Kind) {
  case EventKind::RegionEnter:
  case EventKind::RegionExit:
    if (E.Id >= Tables.NumRegions)
      return fail(ErrorCode::ValueOutOfRange, "event region out of range");
    break;
  case EventKind::ActivityBegin:
  case EventKind::ActivityEnd:
    if (E.Id >= Tables.NumActivities)
      return fail(ErrorCode::ValueOutOfRange, "event activity out of range");
    break;
  case EventKind::MessageSend:
  case EventKind::MessageRecv:
    if (E.Id >= Tables.NumProcs)
      return fail(ErrorCode::ValueOutOfRange, "message peer out of range");
    break;
  }
  if (IsMessage) {
    auto BytesOrErr = scanUnsigned(Fields[4]);
    if (!BytesOrErr)
      return failNumber(BytesOrErr.takeError());
    E.Bytes = *BytesOrErr;
  }
  return Error::success();
}

/// Heap bytes a registered name of \p Len bytes actually costs: the
/// std::string header always, plus the out-of-line buffer only past the
/// small-string capacity.  This is the tightened ParseLimits accounting
/// the zero-alloc scanner charges (the legacy parser over-charged short
/// names by their length and ignored SSO entirely).
inline uint64_t nameAllocCost(size_t Len) {
  static const size_t SsoCapacity = std::string().capacity();
  return sizeof(std::string) + (Len > SsoCapacity ? Len + 1 : 0);
}

} // namespace scan
} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TEXTSCAN_H
