//===- trace/Trace.h - Trace container and validation -----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Trace container: named regions and activities plus per-processor
/// event streams, with structural validation (balanced brackets, monotone
/// per-processor time, matching message endpoints).
///
/// Events are stored struct-of-arrays: each processor's stream is four
/// parallel columns (time, kind, id, bytes) rather than a vector of
/// Event records.  Analysis passes that touch only a subset of the
/// fields (the reduction never reads Bytes, the statistics never read
/// Id except on sends) stream proportionally fewer bytes, and bulk
/// parsers can size the columns up front and write decoded events
/// straight into their final positions — no per-event push_back, no
/// merge copy after a sharded parse.  Consumers iterate through
/// Trace::EventsRef, which materializes Event values on access, so
/// range-for loops over events(P) read exactly as before.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TRACE_H
#define LIMA_TRACE_TRACE_H

#include "support/Error.h"
#include "trace/Event.h"
#include <cstddef>
#include <iterator>
#include <string>
#include <vector>

namespace lima {
namespace trace {

/// A complete post-mortem trace of one program execution.
///
/// Events are kept per processor in append order, which validation checks
/// is non-decreasing in time.  Region and activity ids index the name
/// tables registered up front.
class Trace {
  /// One processor's event stream, columnar.
  struct Stream {
    std::vector<double> Times;
    std::vector<EventKind> Kinds;
    std::vector<uint32_t> Ids;
    std::vector<uint64_t> Bytes;

    size_t size() const { return Times.size(); }
    void resize(size_t N) {
      Times.resize(N);
      Kinds.resize(N);
      Ids.resize(N);
      Bytes.resize(N);
    }
  };

public:
  /// Random-access view of one processor's events.  Dereferencing
  /// materializes an Event value from the columns; the view is
  /// invalidated by any mutation of the stream it refers to.
  class EventsRef {
  public:
    Event operator[](size_t I) const {
      return {S->Times[I], Proc, S->Kinds[I], S->Ids[I], S->Bytes[I]};
    }
    size_t size() const { return S->size(); }
    bool empty() const { return S->size() == 0; }
    Event front() const { return (*this)[0]; }
    Event back() const { return (*this)[S->size() - 1]; }

    /// Direct column access for bandwidth-sensitive passes that only
    /// touch a subset of the event fields.
    const double *times() const { return S->Times.data(); }
    const EventKind *kinds() const { return S->Kinds.data(); }
    const uint32_t *ids() const { return S->Ids.data(); }
    const uint64_t *bytes() const { return S->Bytes.data(); }

    class iterator {
    public:
      using iterator_category = std::input_iterator_tag;
      using value_type = Event;
      using difference_type = std::ptrdiff_t;
      using pointer = const Event *;
      using reference = Event;

      iterator() = default;
      iterator(const EventsRef *Ref, size_t I) : Ref(Ref), I(I) {}
      Event operator*() const { return (*Ref)[I]; }
      iterator &operator++() {
        ++I;
        return *this;
      }
      iterator operator++(int) {
        iterator Old = *this;
        ++I;
        return Old;
      }
      bool operator==(const iterator &O) const { return I == O.I; }
      bool operator!=(const iterator &O) const { return I != O.I; }

    private:
      const EventsRef *Ref = nullptr;
      size_t I = 0;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, S->size()); }

  private:
    friend class Trace;
    EventsRef(const Stream *S, uint32_t Proc) : S(S), Proc(Proc) {}
    const Stream *S;
    uint32_t Proc;
  };

  /// Mutable raw columns of one processor's stream, for bulk decoders
  /// that pre-size with resizeStream and write events in place.  The
  /// writer is responsible for range-validating ids (append's asserts
  /// are bypassed) and for truncateStream when fewer events than sized
  /// were written.
  struct StreamColumns {
    double *Times;
    EventKind *Kinds;
    uint32_t *Ids;
    uint64_t *Bytes;
  };

  /// Creates a trace for \p NumProcs processors.
  explicit Trace(unsigned NumProcs);

  unsigned numProcs() const { return static_cast<unsigned>(Streams.size()); }

  /// Registers a region name, returning its id.  Names must be unique.
  uint32_t addRegion(std::string Name);

  /// Registers an activity name, returning its id.  Names must be unique.
  uint32_t addActivity(std::string Name);

  size_t numRegions() const { return RegionNames.size(); }
  size_t numActivities() const { return ActivityNames.size(); }

  const std::string &regionName(uint32_t Id) const;
  const std::string &activityName(uint32_t Id) const;
  const std::vector<std::string> &regionNames() const { return RegionNames; }
  const std::vector<std::string> &activityNames() const {
    return ActivityNames;
  }

  /// Looks up a region id by name; SIZE_MAX sentinel when absent.
  static constexpr uint32_t InvalidId = UINT32_MAX;
  uint32_t findRegion(std::string_view Name) const;
  uint32_t findActivity(std::string_view Name) const;

  /// Appends \p E to its processor's stream.  Asserts on out-of-range
  /// processor/region/activity ids.
  void append(const Event &E);

  /// Events of processor \p Proc in append order.
  EventsRef events(unsigned Proc) const;

  /// Pre-sizes processor \p Proc's stream to exactly \p N events so a
  /// bulk decoder can fill the columns in place via streamColumns.
  /// Existing events are kept for indices below \p N.
  void resizeStream(unsigned Proc, size_t N);

  /// Shrinks processor \p Proc's stream to its first \p N events (used
  /// after a lenient bulk decode dropped records out of a pre-sized
  /// stream).
  void truncateStream(unsigned Proc, size_t N);

  /// Mutable columns of processor \p Proc's stream.  Pointers are
  /// invalidated by append/resizeStream/truncateStream.
  StreamColumns streamColumns(unsigned Proc);

  /// Total number of events across all processors.
  size_t numEvents() const;

  /// Structural validation:
  ///  - per-processor event times are non-decreasing;
  ///  - region enter/exit events are properly nested (regions MAY nest,
  ///    modeling routines > loops > statements; exits must match the
  ///    innermost open region) and activity begin/end pairs are balanced,
  ///    lie inside a region, do not overlap, and do not straddle region
  ///    boundaries;
  ///  - every MessageSend has a matching MessageRecv on the peer with the
  ///    same byte count, and vice versa.
  Error validate() const;

private:
  std::vector<std::string> RegionNames;
  std::vector<std::string> ActivityNames;
  std::vector<Stream> Streams;
};

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TRACE_H
