//===- trace/Trace.h - Trace container and validation -----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Trace container: named regions and activities plus per-processor
/// event streams, with structural validation (balanced brackets, monotone
/// per-processor time, matching message endpoints).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TRACE_H
#define LIMA_TRACE_TRACE_H

#include "support/Error.h"
#include "trace/Event.h"
#include <string>
#include <vector>

namespace lima {
namespace trace {

/// A complete post-mortem trace of one program execution.
///
/// Events are kept per processor in append order, which validation checks
/// is non-decreasing in time.  Region and activity ids index the name
/// tables registered up front.
class Trace {
public:
  /// Creates a trace for \p NumProcs processors.
  explicit Trace(unsigned NumProcs);

  unsigned numProcs() const { return static_cast<unsigned>(Streams.size()); }

  /// Registers a region name, returning its id.  Names must be unique.
  uint32_t addRegion(std::string Name);

  /// Registers an activity name, returning its id.  Names must be unique.
  uint32_t addActivity(std::string Name);

  size_t numRegions() const { return RegionNames.size(); }
  size_t numActivities() const { return ActivityNames.size(); }

  const std::string &regionName(uint32_t Id) const;
  const std::string &activityName(uint32_t Id) const;
  const std::vector<std::string> &regionNames() const { return RegionNames; }
  const std::vector<std::string> &activityNames() const {
    return ActivityNames;
  }

  /// Looks up a region id by name; SIZE_MAX sentinel when absent.
  static constexpr uint32_t InvalidId = UINT32_MAX;
  uint32_t findRegion(std::string_view Name) const;
  uint32_t findActivity(std::string_view Name) const;

  /// Appends \p E to its processor's stream.  Asserts on out-of-range
  /// processor/region/activity ids.
  void append(const Event &E);

  /// Events of processor \p Proc in append order.
  const std::vector<Event> &events(unsigned Proc) const;

  /// Total number of events across all processors.
  size_t numEvents() const;

  /// Structural validation:
  ///  - per-processor event times are non-decreasing;
  ///  - region enter/exit events are properly nested (regions MAY nest,
  ///    modeling routines > loops > statements; exits must match the
  ///    innermost open region) and activity begin/end pairs are balanced,
  ///    lie inside a region, do not overlap, and do not straddle region
  ///    boundaries;
  ///  - every MessageSend has a matching MessageRecv on the peer with the
  ///    same byte count, and vice versa.
  Error validate() const;

private:
  std::vector<std::string> RegionNames;
  std::vector<std::string> ActivityNames;
  std::vector<std::vector<Event>> Streams;
};

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TRACE_H
