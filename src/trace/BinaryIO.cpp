//===- trace/BinaryIO.cpp - Compact binary trace format -------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/BinaryIO.h"
#include "support/FileUtils.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "trace/ParallelParse.h"
#include "trace/TraceIO.h"
#include <cstring>

using namespace lima;
using namespace lima::trace;

namespace {

constexpr char Magic[4] = {'L', 'I', 'M', 'B'};
constexpr uint32_t Version = 1;

/// Little-endian append helpers.  The host is assumed little-endian (the
/// build targets x86-64/AArch64 Linux); a big-endian port would swap here.
template <typename T> void appendScalar(std::string &Out, T Value) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &Value, sizeof(T));
  Out.append(Buf, sizeof(T));
}

void appendString(std::string &Out, const std::string &Str) {
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(Str.size()));
  Out.append(Str);
}

/// Unsigned LEB128.
void appendVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<char>(0x80 | (Value & 0x7F)));
    Value >>= 7;
  }
  Out.push_back(static_cast<char>(Value));
}

/// Bounds-checked reader over the input buffer.  Offsets in errors are
/// absolute (relative to the start of the file, including the magic).
class Reader {
public:
  Reader(std::string_view Data, size_t StartOffset, size_t MaxNameBytes)
      : Data(Data), Offset(StartOffset), MaxNameBytes(MaxNameBytes) {}

  Expected<uint64_t> readVarint() {
    uint64_t Value = 0;
    unsigned Shift = 0;
    while (true) {
      if (Offset >= Data.size())
        return makeParseError(ErrorCode::TruncatedInput, 0, Offset,
                              "binary trace truncated in varint at byte %zu",
                              Offset);
      uint8_t Byte = static_cast<uint8_t>(Data[Offset++]);
      if (Shift >= 64 || (Shift == 63 && Byte > 1))
        return makeParseError(ErrorCode::MalformedRecord, 0, Offset - 1,
                              "binary trace: varint overflow at byte %zu",
                              Offset - 1);
      Value |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
      if ((Byte & 0x80) == 0)
        return Value;
      Shift += 7;
    }
  }

  template <typename T> Expected<T> read() {
    if (Offset + sizeof(T) > Data.size())
      return makeParseError(ErrorCode::TruncatedInput, 0, Offset,
                            "binary trace truncated at byte %zu", Offset);
    T Value;
    std::memcpy(&Value, Data.data() + Offset, sizeof(T));
    Offset += sizeof(T);
    return Value;
  }

  Expected<std::string> readString() {
    size_t LengthOffset = Offset;
    auto LengthOrErr = read<uint32_t>();
    if (auto Err = LengthOrErr.takeError())
      return Err;
    uint32_t Length = *LengthOrErr;
    if (Length > MaxNameBytes)
      return makeParseError(ErrorCode::LimitExceeded, 0, LengthOffset,
                            "binary trace: string length %u exceeds the "
                            "limit",
                            Length);
    if (Offset + Length > Data.size())
      return makeParseError(ErrorCode::TruncatedInput, 0, Offset,
                            "binary trace truncated in string at byte %zu",
                            Offset);
    std::string Str(Data.substr(Offset, Length));
    Offset += Length;
    return Str;
  }

  bool atEnd() const { return Offset == Data.size(); }
  size_t offset() const { return Offset; }

private:
  std::string_view Data;
  size_t Offset = 0;
  size_t MaxNameBytes;
};

} // namespace

std::string trace::writeTraceBinary(const Trace &T) {
  std::string Out;
  Out.append(Magic, sizeof(Magic));
  appendScalar<uint32_t>(Out, Version);
  appendScalar<uint32_t>(Out, T.numProcs());
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(T.numRegions()));
  for (size_t I = 0; I != T.numRegions(); ++I)
    appendString(Out, T.regionName(static_cast<uint32_t>(I)));
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(T.numActivities()));
  for (size_t I = 0; I != T.numActivities(); ++I)
    appendString(Out, T.activityName(static_cast<uint32_t>(I)));
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    const auto &Events = T.events(Proc);
    appendScalar<uint64_t>(Out, Events.size());
    for (const Event &E : Events) {
      appendScalar<double>(Out, E.Time);
      appendScalar<uint8_t>(Out, static_cast<uint8_t>(E.Kind));
      appendVarint(Out, E.Id);
      appendVarint(Out, E.Bytes);
    }
  }
  return Out;
}

Expected<Trace> trace::parseTraceBinary(std::string_view Data,
                                        const ParseOptions &Options) {
  const ParseLimits &Limits = Options.Limits;
  if (Data.size() < sizeof(Magic) ||
      std::memcmp(Data.data(), Magic, sizeof(Magic)) != 0)
    return makeCodedError(ErrorCode::BadMagic,
                          "binary trace: bad magic (expected 'LIMB')");
  Reader In(Data, sizeof(Magic), Limits.MaxNameBytes);
  uint64_t AllocBytes = 0;
  auto overAllocCap = [&](uint64_t More) {
    AllocBytes += More;
    return AllocBytes > Limits.MaxAllocBytes;
  };

  auto VersionOrErr = In.read<uint32_t>();
  if (auto Err = VersionOrErr.takeError())
    return Err;
  if (*VersionOrErr != Version)
    return makeCodedError(ErrorCode::UnsupportedVersion,
                          "binary trace: unsupported version %u",
                          *VersionOrErr);

  auto ProcsOrErr = In.read<uint32_t>();
  if (auto Err = ProcsOrErr.takeError())
    return Err;
  if (*ProcsOrErr == 0 || *ProcsOrErr > (1u << 20))
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "binary trace: processor count out of range");
  if (*ProcsOrErr > Limits.MaxProcs ||
      overAllocCap(*ProcsOrErr * sizeof(std::vector<Event>)))
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: processor count exceeds the limit");
  Trace T(*ProcsOrErr);

  auto RegionsOrErr = In.read<uint32_t>();
  if (auto Err = RegionsOrErr.takeError())
    return Err;
  if (*RegionsOrErr > Limits.MaxRegions)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: region count exceeds the limit");
  for (uint32_t I = 0; I != *RegionsOrErr; ++I) {
    auto NameOrErr = In.readString();
    if (auto Err = NameOrErr.takeError())
      return Err;
    if (overAllocCap(NameOrErr->size() + sizeof(std::string)))
      return makeCodedError(ErrorCode::LimitExceeded,
                            "binary trace: name tables exceed the "
                            "allocation cap");
    T.addRegion(std::move(*NameOrErr));
  }
  auto ActivitiesOrErr = In.read<uint32_t>();
  if (auto Err = ActivitiesOrErr.takeError())
    return Err;
  if (*ActivitiesOrErr > Limits.MaxActivities)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: activity count exceeds the limit");
  for (uint32_t I = 0; I != *ActivitiesOrErr; ++I) {
    auto NameOrErr = In.readString();
    if (auto Err = NameOrErr.takeError())
      return Err;
    if (overAllocCap(NameOrErr->size() + sizeof(std::string)))
      return makeCodedError(ErrorCode::LimitExceeded,
                            "binary trace: name tables exceed the "
                            "allocation cap");
    T.addActivity(std::move(*NameOrErr));
  }

  uint64_t TotalEvents = 0;
  for (uint32_t Proc = 0; Proc != *ProcsOrErr; ++Proc) {
    auto CountOrErr = In.read<uint64_t>();
    if (auto Err = CountOrErr.takeError())
      return Err;
    for (uint64_t I = 0; I != *CountOrErr; ++I) {
      size_t RecordOffset = In.offset();
      if (Options.Report)
        ++Options.Report->TotalRecords;
      Event E;
      E.Proc = Proc;
      // Field reads keep the stream framed even when values are bad,
      // so value errors are record-level (droppable in lenient mode)
      // while read failures (truncation, varint overflow) stay fatal.
      auto TimeOrErr = In.read<double>();
      if (auto Err = TimeOrErr.takeError())
        return Err;
      E.Time = *TimeOrErr;
      auto KindOrErr = In.read<uint8_t>();
      if (auto Err = KindOrErr.takeError())
        return Err;
      auto IdOrErr = In.readVarint();
      if (auto Err = IdOrErr.takeError())
        return Err;
      auto BytesOrErr = In.readVarint();
      if (auto Err = BytesOrErr.takeError())
        return Err;
      E.Bytes = *BytesOrErr;

      Error ValueErr = [&]() -> Error {
        if (!(E.Time >= 0.0))
          return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                                "binary trace: invalid event time at byte "
                                "%zu",
                                RecordOffset);
        if (*KindOrErr > static_cast<uint8_t>(EventKind::MessageRecv))
          return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                                "binary trace: unknown event kind %u at "
                                "byte %zu",
                                *KindOrErr, RecordOffset);
        E.Kind = static_cast<EventKind>(*KindOrErr);
        if (*IdOrErr > UINT32_MAX)
          return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                                "binary trace: event id overflows u32 at "
                                "byte %zu",
                                RecordOffset);
        E.Id = static_cast<uint32_t>(*IdOrErr);
        // Range-check ids before appending (append asserts, the parser
        // must reject gracefully).
        switch (E.Kind) {
        case EventKind::RegionEnter:
        case EventKind::RegionExit:
          if (E.Id >= T.numRegions())
            return makeParseError(ErrorCode::ValueOutOfRange, 0,
                                  RecordOffset,
                                  "binary trace: region id out of range at "
                                  "byte %zu",
                                  RecordOffset);
          break;
        case EventKind::ActivityBegin:
        case EventKind::ActivityEnd:
          if (E.Id >= T.numActivities())
            return makeParseError(ErrorCode::ValueOutOfRange, 0,
                                  RecordOffset,
                                  "binary trace: activity id out of range "
                                  "at byte %zu",
                                  RecordOffset);
          break;
        case EventKind::MessageSend:
        case EventKind::MessageRecv:
          if (E.Id >= T.numProcs())
            return makeParseError(ErrorCode::ValueOutOfRange, 0,
                                  RecordOffset,
                                  "binary trace: peer out of range at byte "
                                  "%zu",
                                  RecordOffset);
          break;
        }
        return Error::success();
      }();
      if (ValueErr) {
        ParseError PE = ValueErr.toParseError();
        if (Options.dropRecord(PE))
          continue;
        return Error::fromParse(std::move(PE));
      }
      if (++TotalEvents > Limits.MaxEvents)
        return makeParseError(ErrorCode::LimitExceeded, 0, RecordOffset,
                              "binary trace: event count exceeds the limit");
      if (overAllocCap(sizeof(Event)))
        return makeParseError(ErrorCode::LimitExceeded, 0, RecordOffset,
                              "binary trace: event storage exceeds the "
                              "allocation cap");
      T.append(E);
    }
  }
  if (!In.atEnd()) {
    ParseError PE{ErrorCode::MalformedRecord, 0, In.offset(),
                  "binary trace: trailing bytes after events"};
    if (!Options.dropRecord(PE))
      return Error::fromParse(std::move(PE));
  }
  LIMA_METRIC_COUNT("lima.parse.binary.events_total", TotalEvents);
  return T;
}

Error trace::saveTraceBinary(const Trace &T, const std::string &Path) {
  return writeFile(Path, writeTraceBinary(T));
}

Expected<Trace> trace::loadTraceBinary(const std::string &Path,
                                       const ParseOptions &Options) {
  auto FileOrErr = MappedFile::open(Path);
  if (auto Err = FileOrErr.takeError())
    return Err;
  return parseTraceBinary(FileOrErr->view(), Options);
}

Expected<Trace> trace::loadTraceAuto(const std::string &Path,
                                     const ParseOptions &Options,
                                     unsigned Threads) {
  LIMA_STAGE("load");
  Expected<MappedFile> FileOrErr = [&] {
    LIMA_SPAN("load.map");
    return MappedFile::open(Path);
  }();
  if (auto Err = FileOrErr.takeError())
    return Err;
  std::string_view Data = FileOrErr->view();
  LIMA_SPAN("load.parse");
  LIMA_COUNTER_ADD("load.bytes", Data.size());
  if (Data.size() >= sizeof(Magic) &&
      std::memcmp(Data.data(), Magic, sizeof(Magic)) == 0)
    return parseTraceBinary(Data, Options);
  return parseTraceTextParallel(Data, Options, Threads);
}
