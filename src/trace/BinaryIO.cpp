//===- trace/BinaryIO.cpp - Compact binary trace format -------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/BinaryIO.h"
#include "support/Checksum.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Retry.h"
#include "support/Telemetry.h"
#include "trace/BinaryDetail.h"
#include "trace/ParallelBinary.h"
#include "trace/ParallelParse.h"
#include "trace/TraceIO.h"
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

using namespace lima;
using namespace lima::trace;
using namespace lima::trace::detail;

namespace {

/// Little-endian append helpers.  The host is assumed little-endian (the
/// build targets x86-64/AArch64 Linux); a big-endian port would swap here.
template <typename T> void appendScalar(std::string &Out, T Value) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &Value, sizeof(T));
  Out.append(Buf, sizeof(T));
}

void appendString(std::string &Out, const std::string &Str) {
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(Str.size()));
  Out.append(Str);
}

/// Unsigned LEB128.
void appendVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<char>(0x80 | (Value & 0x7F)));
    Value >>= 7;
  }
  Out.push_back(static_cast<char>(Value));
}

/// Serializes the header fields shared by both versions: magic,
/// version, (v2: flags,) processor count and the two name tables.
void appendHeaderCommon(std::string &Out, const Trace &T, uint32_t Version,
                        uint32_t Flags) {
  Out.append(BinaryMagic, sizeof(BinaryMagic));
  appendScalar<uint32_t>(Out, Version);
  if (Version >= BinaryVersion2)
    appendScalar<uint32_t>(Out, Flags);
  appendScalar<uint32_t>(Out, T.numProcs());
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(T.numRegions()));
  for (size_t I = 0; I != T.numRegions(); ++I)
    appendString(Out, T.regionName(static_cast<uint32_t>(I)));
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(T.numActivities()));
  for (size_t I = 0; I != T.numActivities(); ++I)
    appendString(Out, T.activityName(static_cast<uint32_t>(I)));
}

/// One run of a planned block: \p Count events of processor \p Proc
/// starting at stream index \p First.
struct PlanRun {
  uint32_t Proc;
  uint64_t First;
  uint32_t Count;
};

struct PlanBlock {
  std::vector<PlanRun> Runs;
  uint64_t Events = 0;
};

} // namespace

std::string trace::writeTraceBinaryV1(const Trace &T) {
  std::string Out;
  appendHeaderCommon(Out, T, BinaryVersion1, 0);
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    const auto &Events = T.events(Proc);
    appendScalar<uint64_t>(Out, Events.size());
    for (const Event &E : Events) {
      appendScalar<double>(Out, E.Time);
      appendScalar<uint8_t>(Out, static_cast<uint8_t>(E.Kind));
      appendVarint(Out, E.Id);
      appendVarint(Out, E.Bytes);
    }
  }
  return Out;
}

std::string trace::writeTraceBinary(const Trace &T,
                                    const BinaryWriteOptions &Options) {
  std::string Out;
  appendHeaderCommon(Out, T, BinaryVersion2,
                     Options.BlockCrc ? BinaryFlagBlockCrc : 0);
  appendScalar<uint64_t>(Out, T.numEvents());

  // Plan blocks processor-major.  The cap keeps a block's event count
  // and byte size comfortably inside the index's u32 fields.
  const uint64_t BlockEvents = std::clamp<uint64_t>(
      Options.BlockEvents, 1, uint64_t(1) << 26);
  std::vector<PlanBlock> Plan;
  uint64_t Space = 0;
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    uint64_t Remaining = T.events(Proc).size();
    uint64_t First = 0;
    while (Remaining != 0) {
      if (Space == 0) {
        Plan.emplace_back();
        Space = BlockEvents;
      }
      uint64_t Take = std::min(Remaining, Space);
      Plan.back().Runs.push_back(
          {Proc, First, static_cast<uint32_t>(Take)});
      Plan.back().Events += Take;
      First += Take;
      Remaining -= Take;
      Space -= Take;
    }
  }

  // Serialize the blocks, collecting the index as we go.
  struct IndexEntry {
    uint64_t Offset;
    uint32_t Bytes;
    uint32_t Events;
    double First;
    double Last;
    uint32_t Crc;
  };
  std::vector<IndexEntry> Index(Plan.size());
  for (size_t B = 0; B != Plan.size(); ++B) {
    const PlanBlock &PB = Plan[B];
    const size_t BlockStart = Out.size();
    appendVarint(Out, PB.Runs.size());
    bool Any = false;
    double FirstTime = 0.0, LastTime = 0.0;
    for (const PlanRun &R : PB.Runs) {
      appendVarint(Out, R.Proc);
      appendVarint(Out, R.Count);
      const Trace::EventsRef Events = T.events(R.Proc);
      const double *Times = Events.times();
      const EventKind *Kinds = Events.kinds();
      const uint32_t *Ids = Events.ids();
      const uint64_t *Bytes = Events.bytes();
      for (uint64_t J = R.First; J != R.First + R.Count; ++J) {
        appendScalar<double>(Out, Times[J]);
        appendScalar<uint8_t>(Out, static_cast<uint8_t>(Kinds[J]));
        appendVarint(Out, Ids[J]);
        appendVarint(Out, Bytes[J]);
      }
      if (!Any) {
        FirstTime = Times[R.First];
        Any = true;
      }
      LastTime = Times[R.First + R.Count - 1];
    }
    IndexEntry &E = Index[B];
    E.Offset = BlockStart;
    E.Bytes = static_cast<uint32_t>(Out.size() - BlockStart);
    E.Events = static_cast<uint32_t>(PB.Events);
    E.First = FirstTime;
    E.Last = LastTime;
    E.Crc = Options.BlockCrc
                ? crc32(std::string_view(Out).substr(BlockStart))
                : 0;
  }

  // Index section, then the fixed-size footer locating it.
  const size_t IndexStart = Out.size();
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(Plan.size()));
  for (size_t B = 0; B != Plan.size(); ++B) {
    const IndexEntry &E = Index[B];
    appendScalar<uint64_t>(Out, E.Offset);
    appendScalar<uint32_t>(Out, E.Bytes);
    appendScalar<uint32_t>(Out, E.Events);
    appendScalar<double>(Out, E.First);
    appendScalar<double>(Out, E.Last);
    appendScalar<uint32_t>(Out, E.Crc);
    appendScalar<uint32_t>(Out,
                           static_cast<uint32_t>(Plan[B].Runs.size()));
    for (const PlanRun &R : Plan[B].Runs) {
      appendScalar<uint32_t>(Out, R.Proc);
      appendScalar<uint32_t>(Out, R.Count);
    }
  }
  const size_t IndexBytes = Out.size() - IndexStart;
  const uint32_t IndexCrc =
      crc32(std::string_view(Out).substr(IndexStart, IndexBytes));
  appendScalar<uint64_t>(Out, IndexStart);
  appendScalar<uint32_t>(Out, static_cast<uint32_t>(IndexBytes));
  appendScalar<uint32_t>(Out, IndexCrc);
  Out.append(BinaryFooterMagic, sizeof(BinaryFooterMagic));
  return Out;
}

//===----------------------------------------------------------------------===//
// StreamingBinaryWriter
//===----------------------------------------------------------------------===//

StreamingBinaryWriter::~StreamingBinaryWriter() {
  // No finalize: a destroyed-but-unclosed writer leaves the same file a
  // crash would, which recovery handles by design.
  if (Fd >= 0)
    ::close(Fd);
}

Error StreamingBinaryWriter::pwriteAll(const char *Site,
                                       std::string_view Bytes,
                                       uint64_t Offset) {
  const char *Data = Bytes.data();
  size_t Len = Bytes.size();
  while (Len != 0) {
    ssize_t N = retry::retryEintr([&] {
      return fault::pwrite(Site, Fd, Data, Len,
                           static_cast<off_t>(Offset));
    });
    if (N < 0)
      return makeCodedError(ErrorCode::IoError, "write error on '%s': %s",
                            Path.c_str(), std::strerror(errno));
    Data += N;
    Offset += static_cast<uint64_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return Error::success();
}

Error StreamingBinaryWriter::open(const std::string &OutPath,
                                  std::vector<std::string> RegionNames,
                                  std::vector<std::string> ActivityNames,
                                  uint32_t Procs,
                                  const BinaryWriteOptions &Options) {
  if (Fd >= 0)
    return makeCodedError(ErrorCode::Generic,
                          "streaming writer already open on '%s'",
                          Path.c_str());
  if (Procs == 0)
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "streaming writer needs at least one processor");
  // Same cap as the buffered writer, so block planning is identical.
  BlockEvents = static_cast<size_t>(
      std::clamp<uint64_t>(Options.BlockEvents, 1, uint64_t(1) << 26));
  BlockCrc = Options.BlockCrc;
  NumProcs = Procs;
  Path = OutPath;

  // Build the header through the shared serializer: a throwaway Trace
  // holds the name tables.
  Trace T(Procs);
  for (std::string &Name : RegionNames)
    T.addRegion(std::move(Name));
  for (std::string &Name : ActivityNames)
    T.addActivity(std::move(Name));
  std::string Header;
  appendHeaderCommon(Header, T, BinaryVersion2,
                     BinaryFlagStreamed |
                         (BlockCrc ? BinaryFlagBlockCrc : 0));
  TotalFieldOffset = Header.size();
  appendScalar<uint64_t>(Header, 0);

  if (fault::Fault F = fault::check("stream.open")) {
    errno = F.errnoValue() ? F.errnoValue() : EIO;
    return makeCodedError(ErrorCode::IoError, "cannot create '%s': %s",
                          Path.c_str(), std::strerror(errno));
  }
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return makeCodedError(ErrorCode::IoError, "cannot create '%s': %s",
                          Path.c_str(), std::strerror(errno));
  if (Error Err = pwriteAll("stream.write", Header, 0)) {
    ::close(Fd);
    Fd = -1;
    return Err;
  }
  FileEnd = Header.size();
  Appended = Flushed = OpenEvents = 0;
  OpenFirst = OpenLast = 0.0;
  EventBytes.clear();
  OpenRuns.clear();
  OpenRunBytes.clear();
  Blocks.clear();
  BlockRuns.clear();
  return Error::success();
}

Error StreamingBinaryWriter::append(const Event &E) {
  if (Fd < 0)
    return makeCodedError(ErrorCode::Generic,
                          "streaming writer is not open");
  if (E.Proc >= NumProcs)
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "streaming writer: processor %u out of range",
                          E.Proc);
  if (OpenRuns.empty() || OpenRuns.back().Proc != E.Proc) {
    OpenRuns.push_back({E.Proc, 0});
    OpenRunBytes.push_back(0);
  }
  const size_t Before = EventBytes.size();
  appendScalar<double>(EventBytes, E.Time);
  appendScalar<uint8_t>(EventBytes, static_cast<uint8_t>(E.Kind));
  appendVarint(EventBytes, E.Id);
  appendVarint(EventBytes, E.Bytes);
  ++OpenRuns.back().Count;
  OpenRunBytes.back() += EventBytes.size() - Before;
  if (OpenEvents == 0)
    OpenFirst = E.Time;
  OpenLast = E.Time;
  ++OpenEvents;
  ++Appended;
  if (OpenEvents >= BlockEvents)
    return flushBlock();
  return Error::success();
}

Error StreamingBinaryWriter::flushBlock() {
  if (OpenEvents == 0)
    return Error::success();

  // Events of one run are contiguous in EventBytes (a run only closes
  // when the processor changes), so each run splices out its span.
  std::string Payload;
  Payload.reserve(EventBytes.size() + 4 * OpenRuns.size() + 8);
  appendVarint(Payload, OpenRuns.size());
  size_t EventOffset = 0;
  for (size_t R = 0; R != OpenRuns.size(); ++R) {
    appendVarint(Payload, OpenRuns[R].Proc);
    appendVarint(Payload, OpenRuns[R].Count);
    Payload.append(EventBytes, EventOffset, OpenRunBytes[R]);
    EventOffset += OpenRunBytes[R];
  }

  // Crash-consistency ordering: bump the header total first, then land
  // the payload.  At any kill point the total is >= the events on
  // disk, which is exactly what the salvage walk needs to recognize a
  // flushed-prefix file (see BinaryIO.h).  Both writes are idempotent
  // pwrites, so a failed flush can simply be retried.
  const uint64_t NewTotal = Flushed + OpenEvents;
  std::string TotalBytes;
  appendScalar<uint64_t>(TotalBytes, NewTotal);
  if (Error Err = pwriteAll("stream.patch", TotalBytes, TotalFieldOffset))
    return Err;
  if (Error Err = pwriteAll("stream.write", Payload, FileEnd))
    return Err;

  FlushedBlock B;
  B.Offset = FileEnd;
  B.Bytes = static_cast<uint32_t>(Payload.size());
  B.Events = static_cast<uint32_t>(OpenEvents);
  B.First = OpenFirst;
  B.Last = OpenLast;
  B.Crc = BlockCrc ? crc32(Payload) : 0;
  B.FirstRun = static_cast<uint32_t>(BlockRuns.size());
  B.NumRuns = static_cast<uint32_t>(OpenRuns.size());
  Blocks.push_back(B);
  BlockRuns.insert(BlockRuns.end(), OpenRuns.begin(), OpenRuns.end());

  FileEnd += Payload.size();
  Flushed = NewTotal;
  EventBytes.clear();
  OpenRuns.clear();
  OpenRunBytes.clear();
  OpenEvents = 0;
  LIMA_METRIC_COUNT("lima.write.binary.blocks_flushed_total", 1);
  return Error::success();
}

Error StreamingBinaryWriter::close() {
  if (Fd < 0)
    return makeCodedError(ErrorCode::Generic,
                          "streaming writer is not open");
  if (Error Err = flushBlock())
    return Err;

  // Index section + footer, exactly the buffered writer's layout.
  std::string Tail;
  appendScalar<uint32_t>(Tail, static_cast<uint32_t>(Blocks.size()));
  for (const FlushedBlock &B : Blocks) {
    appendScalar<uint64_t>(Tail, B.Offset);
    appendScalar<uint32_t>(Tail, B.Bytes);
    appendScalar<uint32_t>(Tail, B.Events);
    appendScalar<double>(Tail, B.First);
    appendScalar<double>(Tail, B.Last);
    appendScalar<uint32_t>(Tail, B.Crc);
    appendScalar<uint32_t>(Tail, B.NumRuns);
    for (uint32_t R = B.FirstRun; R != B.FirstRun + B.NumRuns; ++R) {
      appendScalar<uint32_t>(Tail, BlockRuns[R].Proc);
      appendScalar<uint32_t>(Tail, BlockRuns[R].Count);
    }
  }
  const uint32_t IndexCrc = crc32(Tail);
  const uint64_t IndexStart = FileEnd;
  const size_t IndexBytes = Tail.size();
  appendScalar<uint64_t>(Tail, IndexStart);
  appendScalar<uint32_t>(Tail, static_cast<uint32_t>(IndexBytes));
  appendScalar<uint32_t>(Tail, IndexCrc);
  Tail.append(BinaryFooterMagic, sizeof(BinaryFooterMagic));
  if (Error Err = pwriteAll("stream.write", Tail, FileEnd))
    return Err;
  FileEnd += Tail.size();

  int SyncRc;
  if (fault::Fault F = fault::check("stream.fsync")) {
    errno = F.errnoValue() ? F.errnoValue() : EIO;
    SyncRc = -1;
  } else {
    SyncRc = retry::retryEintr([&] { return ::fsync(Fd); });
  }
  if (SyncRc != 0)
    return makeCodedError(ErrorCode::IoError, "fsync error on '%s': %s",
                          Path.c_str(), std::strerror(errno));
  if (::close(Fd) != 0) {
    Fd = -1;
    return makeCodedError(ErrorCode::IoError, "close error on '%s': %s",
                          Path.c_str(), std::strerror(errno));
  }
  Fd = -1;
  return Error::success();
}

Error StreamingBinaryWriter::writeTrace(const Trace &T,
                                        const std::string &Path,
                                        const BinaryWriteOptions &Options) {
  std::vector<std::string> Regions, Activities;
  for (size_t I = 0; I != T.numRegions(); ++I)
    Regions.push_back(T.regionName(static_cast<uint32_t>(I)));
  for (size_t I = 0; I != T.numActivities(); ++I)
    Activities.push_back(T.activityName(static_cast<uint32_t>(I)));
  StreamingBinaryWriter W;
  if (Error Err = W.open(Path, std::move(Regions), std::move(Activities),
                         T.numProcs(), Options))
    return Err;
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    for (const Event &E : T.events(Proc))
      if (Error Err = W.append(E))
        return Err;
  return W.close();
}

Error detail::parseBinaryHeader(std::string_view Data,
                                const ParseOptions &Options, BinaryHeader &H,
                                std::optional<Trace> &TOut,
                                uint64_t &AllocBytes) {
  const ParseLimits &Limits = Options.Limits;
  if (Data.size() < sizeof(BinaryMagic) ||
      std::memcmp(Data.data(), BinaryMagic, sizeof(BinaryMagic)) != 0)
    return makeCodedError(ErrorCode::BadMagic,
                          "binary trace: bad magic (expected 'LIMB')");
  ByteReader In(Data, sizeof(BinaryMagic), Limits.MaxNameBytes);
  auto overAllocCap = [&](uint64_t More) {
    AllocBytes += More;
    return AllocBytes > Limits.MaxAllocBytes;
  };

  auto VersionOrErr = In.read<uint32_t>();
  if (auto Err = VersionOrErr.takeError())
    return Err;
  if (*VersionOrErr != BinaryVersion1 && *VersionOrErr != BinaryVersion2)
    return makeCodedError(ErrorCode::UnsupportedVersion,
                          "binary trace: unsupported version %u",
                          *VersionOrErr);
  H.Version = *VersionOrErr;
  if (H.Version >= BinaryVersion2) {
    auto FlagsOrErr = In.read<uint32_t>();
    if (auto Err = FlagsOrErr.takeError())
      return Err;
    if ((*FlagsOrErr & ~BinaryKnownFlags) != 0)
      return makeCodedError(ErrorCode::UnsupportedVersion,
                            "binary trace: unknown format flags 0x%x",
                            *FlagsOrErr);
    H.Flags = *FlagsOrErr;
  }

  auto ProcsOrErr = In.read<uint32_t>();
  if (auto Err = ProcsOrErr.takeError())
    return Err;
  if (*ProcsOrErr == 0 || *ProcsOrErr > (1u << 20))
    return makeCodedError(ErrorCode::ValueOutOfRange,
                          "binary trace: processor count out of range");
  if (*ProcsOrErr > Limits.MaxProcs ||
      overAllocCap(*ProcsOrErr * sizeof(std::vector<Event>)))
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: processor count exceeds the limit");
  H.NumProcs = *ProcsOrErr;
  Trace T(*ProcsOrErr);

  auto RegionsOrErr = In.read<uint32_t>();
  if (auto Err = RegionsOrErr.takeError())
    return Err;
  if (*RegionsOrErr > Limits.MaxRegions)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: region count exceeds the limit");
  for (uint32_t I = 0; I != *RegionsOrErr; ++I) {
    auto NameOrErr = In.readString();
    if (auto Err = NameOrErr.takeError())
      return Err;
    if (overAllocCap(NameOrErr->size() + sizeof(std::string)))
      return makeCodedError(ErrorCode::LimitExceeded,
                            "binary trace: name tables exceed the "
                            "allocation cap");
    T.addRegion(std::move(*NameOrErr));
  }
  auto ActivitiesOrErr = In.read<uint32_t>();
  if (auto Err = ActivitiesOrErr.takeError())
    return Err;
  if (*ActivitiesOrErr > Limits.MaxActivities)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: activity count exceeds the limit");
  for (uint32_t I = 0; I != *ActivitiesOrErr; ++I) {
    auto NameOrErr = In.readString();
    if (auto Err = NameOrErr.takeError())
      return Err;
    if (overAllocCap(NameOrErr->size() + sizeof(std::string)))
      return makeCodedError(ErrorCode::LimitExceeded,
                            "binary trace: name tables exceed the "
                            "allocation cap");
    T.addActivity(std::move(*NameOrErr));
  }

  if (H.Version >= BinaryVersion2) {
    auto TotalOrErr = In.read<uint64_t>();
    if (auto Err = TotalOrErr.takeError())
      return Err;
    H.TotalEvents = *TotalOrErr;
  }
  H.PayloadStart = In.offset();
  TOut.emplace(std::move(T));
  return Error::success();
}

namespace {

/// The original v1 decode path: per-processor u64 counts, events until
/// each count is satisfied, nothing after the last processor.
Expected<Trace> parseTraceBinaryV1Impl(std::string_view Data,
                                       const ParseOptions &Options) {
  const ParseLimits &Limits = Options.Limits;
  BinaryHeader H;
  std::optional<Trace> TOpt;
  uint64_t AllocBytes = 0;
  if (auto Err = parseBinaryHeader(Data, Options, H, TOpt, AllocBytes))
    return Err;
  Trace &T = *TOpt;
  ByteReader In(Data, H.PayloadStart, Limits.MaxNameBytes);
  auto overAllocCap = [&](uint64_t More) {
    AllocBytes += More;
    return AllocBytes > Limits.MaxAllocBytes;
  };

  uint64_t TotalEvents = 0;
  for (uint32_t Proc = 0; Proc != H.NumProcs; ++Proc) {
    auto CountOrErr = In.read<uint64_t>();
    if (auto Err = CountOrErr.takeError())
      return Err;
    for (uint64_t I = 0; I != *CountOrErr; ++I) {
      size_t RecordOffset = In.offset();
      if (Options.Report)
        ++Options.Report->TotalRecords;
      // Field reads keep the stream framed even when values are bad,
      // so value errors are record-level (droppable in lenient mode)
      // while read failures (truncation, varint overflow) stay fatal.
      auto TimeOrErr = In.read<double>();
      if (auto Err = TimeOrErr.takeError())
        return Err;
      auto KindOrErr = In.read<uint8_t>();
      if (auto Err = KindOrErr.takeError())
        return Err;
      auto IdOrErr = In.readVarint();
      if (auto Err = IdOrErr.takeError())
        return Err;
      auto BytesOrErr = In.readVarint();
      if (auto Err = BytesOrErr.takeError())
        return Err;

      Event E;
      E.Proc = Proc;
      Error ValueErr = validateEventValues(*TimeOrErr, *KindOrErr, *IdOrErr,
                                           *BytesOrErr, RecordOffset, T, E);
      if (ValueErr) {
        ParseError PE = ValueErr.toParseError();
        if (Options.dropRecord(PE))
          continue;
        return Error::fromParse(std::move(PE));
      }
      if (++TotalEvents > Limits.MaxEvents)
        return makeParseError(ErrorCode::LimitExceeded, 0, RecordOffset,
                              "binary trace: event count exceeds the limit");
      if (overAllocCap(sizeof(Event)))
        return makeParseError(ErrorCode::LimitExceeded, 0, RecordOffset,
                              "binary trace: event storage exceeds the "
                              "allocation cap");
      T.append(E);
    }
  }
  if (!In.atEnd()) {
    ParseError PE{ErrorCode::MalformedRecord, 0, In.offset(),
                  "binary trace: trailing bytes after events"};
    if (!Options.dropRecord(PE))
      return Error::fromParse(std::move(PE));
  }
  LIMA_METRIC_COUNT("lima.parse.binary.events_total", TotalEvents);
  return std::move(T);
}

} // namespace

Expected<Trace> trace::parseTraceBinary(std::string_view Data,
                                        const ParseOptions &Options) {
  // v2 buffers route through the block-indexed reader at one thread
  // (identical results, one implementation); everything else — v1,
  // bad magic, unknown versions — goes down the v1 path, which
  // produces the structured error for the latter two.
  if (Data.size() >= sizeof(BinaryMagic) + sizeof(uint32_t) &&
      std::memcmp(Data.data(), BinaryMagic, sizeof(BinaryMagic)) == 0) {
    uint32_t Version;
    std::memcpy(&Version, Data.data() + sizeof(BinaryMagic),
                sizeof(Version));
    if (Version == BinaryVersion2)
      return parseTraceBinaryParallel(Data, Options, 1);
  }
  return parseTraceBinaryV1Impl(Data, Options);
}

Error trace::saveTraceBinary(const Trace &T, const std::string &Path) {
  return writeFileAtomic(Path, writeTraceBinary(T));
}

Expected<Trace> trace::loadTraceBinary(const std::string &Path,
                                       const ParseOptions &Options) {
  auto FileOrErr = MappedFile::open(Path);
  if (auto Err = FileOrErr.takeError())
    return Err;
  return parseTraceBinary(FileOrErr->view(), Options);
}

Expected<Trace> trace::loadTraceAuto(const std::string &Path,
                                     const ParseOptions &Options,
                                     unsigned Threads) {
  LIMA_STAGE("load");
  Expected<MappedFile> FileOrErr = [&] {
    LIMA_SPAN("load.map");
    return MappedFile::open(Path);
  }();
  if (auto Err = FileOrErr.takeError())
    return Err;
  std::string_view Data = FileOrErr->view();
  LIMA_SPAN("load.parse");
  LIMA_COUNTER_ADD("load.bytes", Data.size());
  if (Data.size() >= sizeof(BinaryMagic) &&
      std::memcmp(Data.data(), BinaryMagic, sizeof(BinaryMagic)) == 0)
    return parseTraceBinaryParallel(Data, Options, Threads);
  return parseTraceTextParallel(Data, Options, Threads);
}
