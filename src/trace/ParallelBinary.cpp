//===- trace/ParallelBinary.cpp - Sharded LIMB binary parsing -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Structure of a block-indexed binary parse:
//
//   header     sequential: magic/version/flags, name tables, event total
//   pre-check  prove the ParseLimits event and allocation bounds from
//              the declared total, before any event storage exists
//   index      read and validate the footer + block index (CRC, exact
//              tiling of the payload, run/event consistency); on any
//              doubt fall back to a sequential self-framed block walk
//   decode     pre-size every processor's columns, then decode blocks
//              concurrently, each writing its runs' events straight
//              into their final positions
//   merge      fold per-block reports in block order (sequential);
//              lenient drops compact the columns afterwards
//
// The merge order makes the result independent of scheduling: the first
// erroring block in file order wins in strict mode, and lenient counts
// accumulate exactly as a sequential block walk would produce them, so
// the parse is bit-identical at any thread count.
//
//===----------------------------------------------------------------------===//

#include "trace/ParallelBinary.h"
#include "support/Checksum.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include "trace/BinaryDetail.h"
#include "trace/BinaryIO.h"
#include <cstring>
#include <optional>

using namespace lima;
using namespace lima::trace;
using namespace lima::trace::detail;

namespace {

/// Smallest possible serialized event: f64 time, one kind byte, two
/// one-byte varints.  Used to reject index entries whose event counts
/// could not possibly fit their byte ranges (which otherwise would let
/// a hostile index drive arbitrary pre-allocation).
constexpr uint64_t MinEventBytes = 8 + 1 + 1 + 1;

template <typename T> T loadScalar(const char *P) {
  T Value;
  std::memcpy(&Value, P, sizeof(T));
  return Value;
}

/// Raw-bit double comparison (the index pins the exact stored bytes, so
/// NaN payloads and signed zeros must round-trip too).
bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Decode state of one block, merged in block order afterwards.
struct BlockState {
  ParseReport Report;
  std::optional<ParseError> Err; ///< Strict-mode stop for this block.
  std::vector<uint32_t> RunWritten;
};

/// Decodes block \p B of \p Idx into the pre-sized columns \p Cols.
/// Runs land at the destinations in \p RunDest (indexed like
/// Idx.Runs).  Record-level value errors drop single records (lenient)
/// or stop with the record's error (strict), exactly like the v1
/// reader.  Anything that contradicts the validated index — CRC
/// mismatch, run table disagreement, truncated or oversized payload,
/// time bounds that do not match — discards the whole block in lenient
/// mode (all its declared events count as dropped) or stops with the
/// block's error in strict mode.
void decodeBlock(std::string_view Data, const BinaryHeader &H,
                 const BinaryIndex &Idx, size_t B, const Trace &T,
                 const std::vector<Trace::StreamColumns> &Cols,
                 const std::vector<uint64_t> &RunDest,
                 const ParseOptions &Options, BlockState &State) {
  const BlockInfo &Blk = Idx.Blocks[B];
  State.RunWritten.assign(Blk.NumRuns, 0);
  const size_t BlockEnd = static_cast<size_t>(Blk.Offset) + Blk.Bytes;
  uint64_t Inspected = 0;
  bool Strict = Options.Mode != ParseMode::Lenient;

  // Charges the whole block: in strict mode the block's error is the
  // parse error; in lenient mode every declared event of the block is
  // counted as inspected and dropped, and nothing the block decoded so
  // far survives.
  auto dropWholeBlock = [&](ParseError PE) {
    if (Strict) {
      State.Report.TotalRecords = Inspected;
      State.Err = std::move(PE);
      return;
    }
    State.Report = ParseReport();
    State.RunWritten.assign(Blk.NumRuns, 0);
    State.Report.TotalRecords = Blk.Events;
    size_t Bucket = static_cast<size_t>(PE.Code);
    State.Report.addDrop(std::move(PE));
    State.Report.DroppedRecords += Blk.Events - 1;
    State.Report.DroppedByCode[Bucket] += Blk.Events - 1;
  };

  if ((H.Flags & BinaryFlagBlockCrc) != 0 &&
      crc32(Data.substr(Blk.Offset, Blk.Bytes)) != Blk.Crc) {
    dropWholeBlock(makeParseError(ErrorCode::MalformedRecord, 0, Blk.Offset,
                                  "binary trace: block payload CRC mismatch "
                                  "at byte %zu",
                                  static_cast<size_t>(Blk.Offset))
                       .toParseError());
    return;
  }

  // Bound reads to the block: a lying payload must not be able to walk
  // into a neighboring block or the index.
  ByteReader In(Data.substr(0, BlockEnd), Blk.Offset,
                Options.Limits.MaxNameBytes);
  auto indexMismatch = [&](size_t Offset) {
    dropWholeBlock(makeParseError(ErrorCode::MalformedRecord, 0, Offset,
                                  "binary trace: block payload disagrees "
                                  "with index at byte %zu",
                                  Offset)
                       .toParseError());
  };

  auto RunCountOrErr = In.readVarint();
  if (auto Err = RunCountOrErr.takeError()) {
    dropWholeBlock(Err.toParseError());
    return;
  }
  if (*RunCountOrErr != Blk.NumRuns)
    return indexMismatch(Blk.Offset);

  bool Any = false;
  double FirstRaw = 0.0, LastRaw = 0.0;
  for (uint32_t R = 0; R != Blk.NumRuns; ++R) {
    const BlockRun &Run = Idx.Runs[Blk.FirstRun + R];
    size_t RunOffset = In.offset();
    auto ProcOrErr = In.readVarint();
    if (auto Err = ProcOrErr.takeError()) {
      dropWholeBlock(Err.toParseError());
      return;
    }
    auto CountOrErr = In.readVarint();
    if (auto Err = CountOrErr.takeError()) {
      dropWholeBlock(Err.toParseError());
      return;
    }
    if (*ProcOrErr != Run.Proc || *CountOrErr != Run.Count)
      return indexMismatch(RunOffset);

    const Trace::StreamColumns &C = Cols[Run.Proc];
    const uint64_t Dest = RunDest[Blk.FirstRun + R];
    uint32_t Written = 0;
    for (uint32_t J = 0; J != Run.Count; ++J) {
      size_t RecordOffset = In.offset();
      ++Inspected;
      auto TimeOrErr = In.read<double>();
      if (auto Err = TimeOrErr.takeError()) {
        dropWholeBlock(Err.toParseError());
        return;
      }
      auto KindOrErr = In.read<uint8_t>();
      if (auto Err = KindOrErr.takeError()) {
        dropWholeBlock(Err.toParseError());
        return;
      }
      auto IdOrErr = In.readVarint();
      if (auto Err = IdOrErr.takeError()) {
        dropWholeBlock(Err.toParseError());
        return;
      }
      auto BytesOrErr = In.readVarint();
      if (auto Err = BytesOrErr.takeError()) {
        dropWholeBlock(Err.toParseError());
        return;
      }
      if (!Any) {
        FirstRaw = *TimeOrErr;
        Any = true;
      }
      LastRaw = *TimeOrErr;

      Event E;
      E.Proc = Run.Proc;
      Error ValueErr = validateEventValues(*TimeOrErr, *KindOrErr, *IdOrErr,
                                           *BytesOrErr, RecordOffset, T, E);
      if (ValueErr) {
        ParseError PE = ValueErr.toParseError();
        if (Strict) {
          State.Report.TotalRecords = Inspected;
          State.Err = std::move(PE);
          return;
        }
        State.Report.addDrop(std::move(PE));
        continue;
      }
      C.Times[Dest + Written] = E.Time;
      C.Kinds[Dest + Written] = E.Kind;
      C.Ids[Dest + Written] = E.Id;
      C.Bytes[Dest + Written] = E.Bytes;
      ++Written;
    }
    State.RunWritten[R] = Written;
  }
  if (In.offset() != BlockEnd)
    return indexMismatch(In.offset());
  if (Any && (!sameBits(FirstRaw, Blk.FirstTime) ||
              !sameBits(LastRaw, Blk.LastTime)))
    return indexMismatch(Blk.Offset);
  State.Report.TotalRecords = Inspected;
}

/// Sequential fallback for v2 buffers without a usable index: walk the
/// self-framed blocks until the header's event total is consumed, then
/// ignore whatever trails (a damaged index).  Framing damage is fatal
/// in both modes, value errors are droppable, exactly like v1 — with
/// one carve-out: in a *streamed* file (header flag bit 1) truncation
/// mid-walk is the expected fingerprint of a writer that died, because
/// the streaming writer patches the header total ahead of each block.
/// The walk then rolls the partial tail block back (events, report
/// counts) and returns the fully-flushed prefix in both parse modes —
/// the recovery contract StreamingWriterTest pins.
Expected<Trace> walkBinaryV2(std::string_view Data,
                             const ParseOptions &Options,
                             const BinaryHeader &H, Trace T) {
  LIMA_METRIC_COUNT("lima.parse.binary.fallback_total", 1);
  const bool Streamed = (H.Flags & BinaryFlagStreamed) != 0;
  ByteReader In(Data, H.PayloadStart, Options.Limits.MaxNameBytes);
  uint64_t Remaining = H.TotalEvents;
  uint64_t Decoded = 0;

  // Decodes the block at the cursor; consumes from Remaining.
  auto decodeOneBlock = [&]() -> Error {
    size_t BlockOffset = In.offset();
    auto RunCountOrErr = In.readVarint();
    if (auto Err = RunCountOrErr.takeError())
      return Err;
    if (*RunCountOrErr == 0)
      return makeParseError(ErrorCode::MalformedRecord, 0, BlockOffset,
                            "binary trace: block declares no runs at byte "
                            "%zu",
                            BlockOffset);
    for (uint64_t R = 0; R != *RunCountOrErr; ++R) {
      size_t RunOffset = In.offset();
      auto ProcOrErr = In.readVarint();
      if (auto Err = ProcOrErr.takeError())
        return Err;
      if (*ProcOrErr >= H.NumProcs)
        return makeParseError(ErrorCode::MalformedRecord, 0, RunOffset,
                              "binary trace: block run processor out of "
                              "range at byte %zu",
                              RunOffset);
      auto CountOrErr = In.readVarint();
      if (auto Err = CountOrErr.takeError())
        return Err;
      if (*CountOrErr == 0 || *CountOrErr > Remaining)
        return makeParseError(ErrorCode::MalformedRecord, 0, RunOffset,
                              "binary trace: block run count out of range "
                              "at byte %zu",
                              RunOffset);
      uint32_t Proc = static_cast<uint32_t>(*ProcOrErr);
      for (uint64_t J = 0; J != *CountOrErr; ++J) {
        size_t RecordOffset = In.offset();
        if (Options.Report)
          ++Options.Report->TotalRecords;
        auto TimeOrErr = In.read<double>();
        if (auto Err = TimeOrErr.takeError())
          return Err;
        auto KindOrErr = In.read<uint8_t>();
        if (auto Err = KindOrErr.takeError())
          return Err;
        auto IdOrErr = In.readVarint();
        if (auto Err = IdOrErr.takeError())
          return Err;
        auto BytesOrErr = In.readVarint();
        if (auto Err = BytesOrErr.takeError())
          return Err;
        Event E;
        E.Proc = Proc;
        Error ValueErr =
            validateEventValues(*TimeOrErr, *KindOrErr, *IdOrErr,
                                *BytesOrErr, RecordOffset, T, E);
        if (ValueErr) {
          ParseError PE = ValueErr.toParseError();
          if (Options.dropRecord(PE))
            continue;
          return Error::fromParse(std::move(PE));
        }
        T.append(E);
        ++Decoded;
      }
      Remaining -= *CountOrErr;
    }
    return Error::success();
  };

  // Rollback state, refreshed at each block boundary of a streamed
  // file so a truncated tail block can be undone in O(its size).
  std::vector<size_t> ProcSizes;
  ParseReport ReportSnapshot;
  uint64_t DecodedSnapshot = 0;
  if (Streamed)
    ProcSizes.resize(H.NumProcs, 0);

  while (Remaining != 0) {
    if (Streamed) {
      for (uint32_t Proc = 0; Proc != H.NumProcs; ++Proc)
        ProcSizes[Proc] = T.events(Proc).size();
      if (Options.Report)
        ReportSnapshot = *Options.Report;
      DecodedSnapshot = Decoded;
    }
    if (Error Err = decodeOneBlock()) {
      if (Streamed && Err.code() == ErrorCode::TruncatedInput) {
        // The writer died mid-block (or mid-patch): everything before
        // this block is complete by the patch-before-block ordering.
        // Un-append the partial block and return the flushed prefix.
        Err.consume();
        for (uint32_t Proc = 0; Proc != H.NumProcs; ++Proc)
          T.truncateStream(Proc, ProcSizes[Proc]);
        if (Options.Report)
          *Options.Report = std::move(ReportSnapshot);
        Decoded = DecodedSnapshot;
        LIMA_METRIC_COUNT("lima.parse.binary.salvaged_total", 1);
        break;
      }
      return Err;
    }
  }
  // Bytes after the last block are the (unvalidated) index; ignore them.
  LIMA_METRIC_COUNT("lima.parse.binary.events_total", Decoded);
  return T;
}

/// The indexed v2 decode: pre-size, decode blocks on \p Threads
/// threads, merge in block order, compact out lenient drops.
Expected<Trace> parseBinaryV2Indexed(std::string_view Data,
                                     const ParseOptions &Options,
                                     const BinaryHeader &H,
                                     const BinaryIndex &Idx, Trace T,
                                     unsigned Threads) {
  // Destination offsets: runs are in file order, which within one
  // processor is stream order, so a prefix scan per processor places
  // every run.
  std::vector<uint64_t> ProcTotal(H.NumProcs, 0);
  std::vector<uint64_t> RunDest(Idx.Runs.size());
  for (size_t R = 0; R != Idx.Runs.size(); ++R) {
    RunDest[R] = ProcTotal[Idx.Runs[R].Proc];
    ProcTotal[Idx.Runs[R].Proc] += Idx.Runs[R].Count;
  }
  for (unsigned Proc = 0; Proc != H.NumProcs; ++Proc)
    T.resizeStream(Proc, ProcTotal[Proc]);
  std::vector<Trace::StreamColumns> Cols;
  Cols.reserve(H.NumProcs);
  for (unsigned Proc = 0; Proc != H.NumProcs; ++Proc)
    Cols.push_back(T.streamColumns(Proc));

  {
    LIMA_SPAN("ingest.decode");
    LIMA_METRIC_COUNT("lima.parse.binary.blocks", Idx.Blocks.size());
    std::vector<BlockState> States(Idx.Blocks.size());
    parallelFor(Idx.Blocks.size(), Threads, [&](size_t B) {
      decodeBlock(Data, H, Idx, B, T, Cols, RunDest, Options, States[B]);
    });

    // Merge in block order; the lowest-offset erroring block wins, and
    // the reports merged before it are exactly what a sequential walk
    // would have accumulated up to that point.
    LIMA_SPAN("ingest.merge");
    for (size_t B = 0; B != Idx.Blocks.size(); ++B) {
      if (Options.Report)
        Options.Report->merge(States[B].Report);
      if (States[B].Err)
        return Error::fromParse(std::move(*States[B].Err));
    }

    // Compact out the gaps lenient drops left in the pre-sized columns:
    // per processor, slide each run's written prefix down in run order.
    std::vector<uint64_t> Cursor(H.NumProcs, 0);
    for (size_t B = 0; B != Idx.Blocks.size(); ++B) {
      const BlockInfo &Blk = Idx.Blocks[B];
      for (uint32_t R = 0; R != Blk.NumRuns; ++R) {
        const BlockRun &Run = Idx.Runs[Blk.FirstRun + R];
        const uint64_t Written = States[B].RunWritten[R];
        const uint64_t Dest = RunDest[Blk.FirstRun + R];
        uint64_t &At = Cursor[Run.Proc];
        if (Written != 0 && At != Dest) {
          const Trace::StreamColumns &C = Cols[Run.Proc];
          std::memmove(C.Times + At, C.Times + Dest,
                       Written * sizeof(*C.Times));
          std::memmove(C.Kinds + At, C.Kinds + Dest,
                       Written * sizeof(*C.Kinds));
          std::memmove(C.Ids + At, C.Ids + Dest,
                       Written * sizeof(*C.Ids));
          std::memmove(C.Bytes + At, C.Bytes + Dest,
                       Written * sizeof(*C.Bytes));
        }
        At += Written;
      }
    }
    uint64_t Kept = 0;
    for (unsigned Proc = 0; Proc != H.NumProcs; ++Proc) {
      T.truncateStream(Proc, Cursor[Proc]);
      Kept += Cursor[Proc];
    }
    LIMA_METRIC_COUNT("lima.parse.binary.events_total", Kept);
  }
  return T;
}

} // namespace

std::optional<BinaryIndex> detail::readBinaryIndex(std::string_view Data,
                                                   const BinaryHeader &H) {
  if (Data.size() < H.PayloadStart + BinaryFooterSize)
    return std::nullopt;
  const char *Footer = Data.data() + Data.size() - BinaryFooterSize;
  if (std::memcmp(Footer + 16, BinaryFooterMagic,
                  sizeof(BinaryFooterMagic)) != 0)
    return std::nullopt;
  const uint64_t IndexOffset = loadScalar<uint64_t>(Footer);
  const uint32_t IndexBytes = loadScalar<uint32_t>(Footer + 8);
  const uint32_t IndexCrc = loadScalar<uint32_t>(Footer + 12);
  if (IndexOffset < H.PayloadStart)
    return std::nullopt;
  // The index must end exactly at the footer; this also rejects an
  // index offset pointing past the end of the file.
  if (IndexOffset + IndexBytes + BinaryFooterSize != Data.size())
    return std::nullopt;
  std::string_view IndexView = Data.substr(IndexOffset, IndexBytes);
  if (crc32(IndexView) != IndexCrc)
    return std::nullopt;

  size_t Pos = 0;
  auto readU32 = [&](uint32_t &Out) {
    if (Pos + sizeof(uint32_t) > IndexView.size())
      return false;
    Out = loadScalar<uint32_t>(IndexView.data() + Pos);
    Pos += sizeof(uint32_t);
    return true;
  };
  auto readU64 = [&](uint64_t &Out) {
    if (Pos + sizeof(uint64_t) > IndexView.size())
      return false;
    Out = loadScalar<uint64_t>(IndexView.data() + Pos);
    Pos += sizeof(uint64_t);
    return true;
  };
  auto readF64 = [&](double &Out) {
    if (Pos + sizeof(double) > IndexView.size())
      return false;
    Out = loadScalar<double>(IndexView.data() + Pos);
    Pos += sizeof(double);
    return true;
  };

  uint32_t BlockCount = 0;
  if (!readU32(BlockCount))
    return std::nullopt;
  if (BlockCount != 0 &&
      BlockCount > (IndexView.size() - Pos) / BinaryMinIndexEntry)
    return std::nullopt;
  BinaryIndex Idx;
  Idx.Blocks.reserve(BlockCount);
  uint64_t ExpectOffset = H.PayloadStart;
  uint64_t TotalEvents = 0;
  for (uint32_t B = 0; B != BlockCount; ++B) {
    BlockInfo Blk;
    uint32_t RunCount = 0;
    if (!readU64(Blk.Offset) || !readU32(Blk.Bytes) ||
        !readU32(Blk.Events) || !readF64(Blk.FirstTime) ||
        !readF64(Blk.LastTime) || !readU32(Blk.Crc) || !readU32(RunCount))
      return std::nullopt;
    // Blocks must tile the payload contiguously in order (rejects
    // overlaps, gaps and out-of-order entries in one comparison).
    if (Blk.Offset != ExpectOffset || Blk.Bytes == 0 || Blk.Events == 0 ||
        RunCount == 0)
      return std::nullopt;
    // An event count its byte range could not possibly hold would let
    // a hostile index drive arbitrary pre-allocation.
    if (1 + 2 * static_cast<uint64_t>(RunCount) +
            MinEventBytes * Blk.Events >
        Blk.Bytes)
      return std::nullopt;
    ExpectOffset += Blk.Bytes;
    Blk.FirstRun = static_cast<uint32_t>(Idx.Runs.size());
    Blk.NumRuns = RunCount;
    uint64_t BlockSum = 0;
    for (uint32_t R = 0; R != RunCount; ++R) {
      BlockRun Run;
      if (!readU32(Run.Proc) || !readU32(Run.Count))
        return std::nullopt;
      if (Run.Proc >= H.NumProcs || Run.Count == 0)
        return std::nullopt;
      BlockSum += Run.Count;
      Idx.Runs.push_back(Run);
    }
    if (BlockSum != Blk.Events)
      return std::nullopt;
    TotalEvents += Blk.Events;
    Idx.Blocks.push_back(Blk);
  }
  if (Pos != IndexView.size())
    return std::nullopt;
  if (ExpectOffset != IndexOffset)
    return std::nullopt;
  if (TotalEvents != H.TotalEvents)
    return std::nullopt;
  return Idx;
}

Expected<Trace> trace::parseTraceBinaryParallel(std::string_view Data,
                                                const ParseOptions &Options,
                                                unsigned Threads) {
  // Only v2 buffers have blocks to shard; everything else (v1, bad
  // magic, unknown versions) takes the sequential path, which produces
  // the structured errors for the latter two.
  if (Data.size() < sizeof(BinaryMagic) + sizeof(uint32_t) ||
      std::memcmp(Data.data(), BinaryMagic, sizeof(BinaryMagic)) != 0)
    return parseTraceBinary(Data, Options);
  uint32_t Version;
  std::memcpy(&Version, Data.data() + sizeof(BinaryMagic), sizeof(Version));
  if (Version != BinaryVersion2)
    return parseTraceBinary(Data, Options);

  Threads = resolveThreadCount(Threads);
  LIMA_STAGE("ingest");
  BinaryHeader H;
  std::optional<Trace> TOpt;
  uint64_t AllocBytes = 0;
  if (auto Err = parseBinaryHeader(Data, Options, H, TOpt, AllocBytes))
    return Err;

  // Limits pre-check from the declared total, before any event storage
  // is allocated.  The index reader verifies the per-block counts sum
  // to exactly this total, so passing here covers the indexed decode;
  // the fallback walk stops at the total by construction.
  const ParseLimits &Limits = Options.Limits;
  if (H.TotalEvents > Limits.MaxEvents)
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: event count exceeds the limit");
  if (AllocBytes > Limits.MaxAllocBytes ||
      H.TotalEvents >
          (Limits.MaxAllocBytes - AllocBytes) / sizeof(Event))
    return makeCodedError(ErrorCode::LimitExceeded,
                          "binary trace: event storage exceeds the "
                          "allocation cap");

  std::optional<BinaryIndex> Idx = [&] {
    LIMA_SPAN("ingest.index");
    return readBinaryIndex(Data, H);
  }();
  if (!Idx)
    return walkBinaryV2(Data, Options, H, std::move(*TOpt));
  return parseBinaryV2Indexed(Data, Options, H, *Idx, std::move(*TOpt),
                              Threads);
}

Expected<Trace> trace::loadTraceBinaryParallel(const std::string &Path,
                                               const ParseOptions &Options,
                                               unsigned Threads) {
  auto FileOrErr = MappedFile::open(Path);
  if (auto Err = FileOrErr.takeError())
    return Err;
  return parseTraceBinaryParallel(FileOrErr->view(), Options, Threads);
}
