//===- trace/Filter.cpp - Trace slicing -----------------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Filter.h"
#include <algorithm>

using namespace lima;
using namespace lima::trace;

Expected<Trace> trace::filterTrace(const Trace &T,
                                   const FilterOptions &Options) {
  if (auto Err = T.validate())
    return Err;
  if (!(Options.TimeBegin <= Options.TimeEnd))
    return makeStringError("filter window is empty");

  // Resolve the region-name allowlist to ids.
  std::vector<bool> KeepRegion(T.numRegions(), Options.Regions.empty());
  for (const std::string &Name : Options.Regions) {
    uint32_t Id = T.findRegion(Name);
    if (Id == Trace::InvalidId)
      return makeStringError("filter: unknown region '%s'", Name.c_str());
    KeepRegion[Id] = true;
  }

  Trace Result(T.numProcs());
  for (const std::string &Name : T.regionNames())
    Result.addRegion(Name);
  for (const std::string &Name : T.activityNames())
    Result.addActivity(Name);

  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    // The filter unit is the *outermost* region instance: nested child
    // regions ride along with their enclosing bracket, and the region
    // allowlist is matched against the outermost region id.
    std::vector<Event> Pending;
    unsigned Depth = 0;
    bool InstanceKept = false;
    for (const Event &E : T.events(Proc)) {
      switch (E.Kind) {
      case EventKind::RegionEnter:
        if (Depth == 0) {
          InstanceKept = KeepRegion[E.Id] && E.Time >= Options.TimeBegin;
          Pending.clear();
        }
        ++Depth;
        Pending.push_back(E);
        break;
      case EventKind::RegionExit:
        Pending.push_back(E);
        --Depth;
        if (Depth == 0) {
          if (InstanceKept && E.Time <= Options.TimeEnd)
            for (const Event &Kept : Pending)
              Result.append(Kept);
          Pending.clear();
        }
        break;
      case EventKind::MessageSend:
      case EventKind::MessageRecv:
        if (Options.KeepMessages && Depth > 0)
          Pending.push_back(E);
        break;
      default:
        if (Depth > 0)
          Pending.push_back(E);
        break;
      }
    }
  }
  return Result;
}
