//===- trace/BinaryIO.h - Compact binary trace format -----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact little-endian binary encoding of traces ("LIMB" format),
/// for runs where the text format's size and parse cost matter.  Two
/// on-disk versions exist; both share the header prefix:
///
///   magic "LIMB"            4 bytes
///   version                 u32 (1 or 2)
///
/// Version 1 (legacy, still fully readable):
///
///   numProcs                u32
///   numRegions              u32, then per region: u32 length + bytes
///   numActivities           u32, then per activity: u32 length + bytes
///   per processor:          u64 event count, then per event:
///     f64 time, u8 kind, varint id, varint bytes
///
/// Version 2 (the default writer output) groups events into fixed-count
/// blocks and appends a block index, so readers can decode blocks in
/// parallel and pre-size storage before touching the payload:
///
///   flags                   u32 (bit 0: per-block payload CRC32)
///   numProcs                u32
///   numRegions              u32, then per region: u32 length + bytes
///   numActivities           u32, then per activity: u32 length + bytes
///   totalEvents             u64
///   per block:              varint run count, then per run:
///     varint proc, varint count, then count events:
///       f64 time, u8 kind, varint id, varint bytes
///   index:                  u32 block count, then per block:
///     u64 offset, u32 bytes, u32 events, f64 first time, f64 last
///     time, u32 crc32, u32 run count, then per run: u32 proc, u32 count
///   footer (last 24 bytes): u64 index offset, u32 index bytes,
///     u32 index crc32, char[8] "LIMBIDX2"
///
/// Blocks cover events processor-major (all of processor 0's events,
/// then processor 1's, ...), each block holding at most a fixed number
/// of events, so one block can end with the tail of one processor's
/// stream and begin with the head of the next.  The payload is
/// self-framing (run counts are in-band and the header carries the
/// event total), so a reader that cannot validate the index — truncated
/// footer, CRC mismatch, inconsistent entries — falls back to a
/// sequential walk of the blocks and ignores the trailing index bytes.
///
/// Fixed-width integers are little-endian; event ids and byte counts
/// use LEB128 varints (they are almost always tiny, which makes the
/// format ~2x smaller than the text form).  The reader validates magic,
/// version, counts and id ranges and reports structured errors.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_BINARYIO_H
#define LIMA_TRACE_BINARYIO_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <cstddef>
#include <string>

namespace lima {
namespace trace {

/// Writer knobs for the v2 format.
struct BinaryWriteOptions {
  /// Maximum events per block.  The default keeps blocks around 1-2 MB
  /// — big enough to amortize per-block index overhead to well under
  /// 2 % of the file, small enough that a multi-core reader has
  /// parallelism to exploit on any trace worth sharding.
  size_t BlockEvents = 64 * 1024;
  /// Emit a CRC32 of each block's payload bytes into the index.
  bool BlockCrc = true;
};

/// Serializes \p T to the LIMB v2 (block-indexed) binary format.
std::string writeTraceBinary(const Trace &T,
                             const BinaryWriteOptions &Options = {});

/// Serializes \p T to the legacy LIMB v1 format (no blocks, no index).
/// Kept for format-compatibility tests and for benchmarking the v1
/// sequential decode path against v2.
std::string writeTraceBinaryV1(const Trace &T);

/// Parses a LIMB buffer of either version.
///
/// Event records whose *values* are bad (unknown kind, negative time,
/// id out of range) keep the stream framed, so ParseMode::Lenient drops
/// them (counted in Options.Report) and keeps going.  Failures that
/// lose framing — truncation, varint overflow — are fatal in both
/// modes, as are ParseLimits violations.  In a v2 file with a valid
/// index, framing damage is confined to the enclosing block: strict
/// mode fails with the first bad block's error, lenient mode drops the
/// whole block (its declared events are counted as dropped) and keeps
/// going.
///
/// v2 buffers are decoded through the block-indexed reader at a single
/// thread; use parseTraceBinaryParallel (trace/ParallelBinary.h) to
/// decode blocks concurrently.  Results are bit-identical either way.
Expected<Trace> parseTraceBinary(std::string_view Data,
                                 const ParseOptions &Options = {});

/// Whole-file helpers.  saveTraceBinary writes atomically (temp file +
/// rename), so readers never observe a half-written trace.
Error saveTraceBinary(const Trace &T, const std::string &Path);
Expected<Trace> loadTraceBinary(const std::string &Path,
                                const ParseOptions &Options = {});

/// Loads a trace in either format, sniffing the magic: "LIMB" selects
/// the binary parser, anything else the text parser.  The file is
/// mmapped when possible and parsed zero-copy; both formats parse on
/// \p Threads threads (0 = all hardware threads, 1 = sequential) via
/// parseTraceTextParallel / parseTraceBinaryParallel, which are
/// bit-identical to their sequential counterparts at every thread
/// count.
Expected<Trace> loadTraceAuto(const std::string &Path,
                              const ParseOptions &Options = {},
                              unsigned Threads = 1);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_BINARYIO_H
