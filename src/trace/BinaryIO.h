//===- trace/BinaryIO.h - Compact binary trace format -----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact little-endian binary encoding of traces ("LIMB" format),
/// for runs where the text format's size and parse cost matter.  Two
/// on-disk versions exist; both share the header prefix:
///
///   magic "LIMB"            4 bytes
///   version                 u32 (1 or 2)
///
/// Version 1 (legacy, still fully readable):
///
///   numProcs                u32
///   numRegions              u32, then per region: u32 length + bytes
///   numActivities           u32, then per activity: u32 length + bytes
///   per processor:          u64 event count, then per event:
///     f64 time, u8 kind, varint id, varint bytes
///
/// Version 2 (the default writer output) groups events into fixed-count
/// blocks and appends a block index, so readers can decode blocks in
/// parallel and pre-size storage before touching the payload:
///
///   flags                   u32 (bit 0: per-block payload CRC32)
///   numProcs                u32
///   numRegions              u32, then per region: u32 length + bytes
///   numActivities           u32, then per activity: u32 length + bytes
///   totalEvents             u64
///   per block:              varint run count, then per run:
///     varint proc, varint count, then count events:
///       f64 time, u8 kind, varint id, varint bytes
///   index:                  u32 block count, then per block:
///     u64 offset, u32 bytes, u32 events, f64 first time, f64 last
///     time, u32 crc32, u32 run count, then per run: u32 proc, u32 count
///   footer (last 24 bytes): u64 index offset, u32 index bytes,
///     u32 index crc32, char[8] "LIMBIDX2"
///
/// Blocks cover events processor-major (all of processor 0's events,
/// then processor 1's, ...), each block holding at most a fixed number
/// of events, so one block can end with the tail of one processor's
/// stream and begin with the head of the next.  The payload is
/// self-framing (run counts are in-band and the header carries the
/// event total), so a reader that cannot validate the index — truncated
/// footer, CRC mismatch, inconsistent entries — falls back to a
/// sequential walk of the blocks and ignores the trailing index bytes.
///
/// Flag bit 1 ("streamed") marks files produced by the incremental
/// StreamingBinaryWriter, which patches the header's event total
/// *before* appending each block and writes the index only at close().
/// That ordering is the crash-consistency contract: at every kill
/// point the header total is >= the events on disk, so the sequential
/// walk of a truncated streamed file ends in a truncation it can
/// recognize as "writer died here" and salvages exactly the
/// fully-flushed blocks (both parse modes).  Buffered files never set
/// the bit, so for them truncation stays the hard corruption error it
/// always was.
///
/// Fixed-width integers are little-endian; event ids and byte counts
/// use LEB128 varints (they are almost always tiny, which makes the
/// format ~2x smaller than the text form).  The reader validates magic,
/// version, counts and id ranges and reports structured errors.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_BINARYIO_H
#define LIMA_TRACE_BINARYIO_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lima {
namespace trace {

/// Writer knobs for the v2 format.
struct BinaryWriteOptions {
  /// Maximum events per block.  The default keeps blocks around 1-2 MB
  /// — big enough to amortize per-block index overhead to well under
  /// 2 % of the file, small enough that a multi-core reader has
  /// parallelism to exploit on any trace worth sharding.
  size_t BlockEvents = 64 * 1024;
  /// Emit a CRC32 of each block's payload bytes into the index.
  bool BlockCrc = true;
};

/// Serializes \p T to the LIMB v2 (block-indexed) binary format.
std::string writeTraceBinary(const Trace &T,
                             const BinaryWriteOptions &Options = {});

/// Serializes \p T to the legacy LIMB v1 format (no blocks, no index).
/// Kept for format-compatibility tests and for benchmarking the v1
/// sequential decode path against v2.
std::string writeTraceBinaryV1(const Trace &T);

/// Incremental LIMB v2 writer: appends events to an open file, flushing
/// each block (with its CRC) as it fills and writing the block index +
/// footer at close().  Writer memory is O(one block) of payload plus a
/// few dozen bytes of index metadata per flushed block — a trace of any
/// length streams through a fixed-size buffer, which is what the
/// monitor's append workflow needs (the buffered writeTraceBinary
/// materializes the whole file).
///
/// Crash consistency: the header's event total is patched (pwrite)
/// *before* each block's payload is appended, and the "streamed" header
/// flag tells readers so.  Kill the process at any byte boundary and
/// loadTraceAuto recovers exactly the fully-flushed blocks: complete
/// files load through the index as usual; truncated ones take the
/// sequential salvage walk, which rolls back the partial tail block.
/// The file is written in place (no temp + rename — a crash must leave
/// the recoverable prefix behind, not unlink it).
///
/// Events may arrive in any processor interleaving; within one
/// processor, append order is the stream order readers will see.
/// Failed appends/closes leave the writer consistent, so transient
/// errors (ENOSPC) can simply be retried.
class StreamingBinaryWriter {
public:
  StreamingBinaryWriter() = default;
  /// Closes the descriptor WITHOUT finalizing: no partial-block flush,
  /// no index.  The on-disk file stays exactly as crash recovery
  /// expects (header + flushed blocks).  Call close() for a complete,
  /// indexed file.
  ~StreamingBinaryWriter();
  StreamingBinaryWriter(const StreamingBinaryWriter &) = delete;
  StreamingBinaryWriter &operator=(const StreamingBinaryWriter &) = delete;

  /// Creates/truncates \p Path and writes the v2 header (streamed flag
  /// set, event total 0).  Name tables and the processor count are
  /// fixed for the life of the file.
  Error open(const std::string &Path, std::vector<std::string> RegionNames,
             std::vector<std::string> ActivityNames, uint32_t NumProcs,
             const BinaryWriteOptions &Options = {});

  /// Buffers one event; flushes the current block once it holds
  /// BlockEvents events.  E.Proc must be < the open() processor count.
  Error append(const Event &E);

  /// Flushes the partial tail block, writes the index + footer, fsyncs
  /// and closes.  The writer is reusable via open() afterwards.
  Error close();

  bool isOpen() const { return Fd >= 0; }
  /// Events accepted by append() (flushed or still buffered).
  uint64_t eventsAppended() const { return Appended; }
  /// Events durable in flushed blocks (what a crash right now keeps).
  uint64_t eventsFlushed() const { return Flushed; }
  uint64_t blocksFlushed() const { return Blocks.size(); }
  /// Bytes currently buffered for the open block (the memory bound).
  size_t bufferedBytes() const { return EventBytes.size(); }

  /// Streams \p T processor-major through a writer.  Byte-identical to
  /// writeTraceBinary(T, Options) except for the streamed flag bit.
  static Error writeTrace(const Trace &T, const std::string &Path,
                          const BinaryWriteOptions &Options = {});

private:
  struct Run {
    uint32_t Proc;
    uint32_t Count;
  };
  struct FlushedBlock {
    uint64_t Offset;
    uint32_t Bytes;
    uint32_t Events;
    double First;
    double Last;
    uint32_t Crc;
    uint32_t FirstRun;
    uint32_t NumRuns;
  };

  Error flushBlock();
  Error pwriteAll(const char *Site, std::string_view Bytes, uint64_t Offset);

  int Fd = -1;
  std::string Path;
  bool BlockCrc = true;
  size_t BlockEvents = 0;
  uint64_t TotalFieldOffset = 0; ///< File offset of the header's u64 total.
  uint64_t FileEnd = 0;          ///< Logical append position.
  uint64_t Appended = 0;
  uint64_t Flushed = 0;
  uint32_t NumProcs = 0;
  // Open-block state: serialized events plus the run structure over
  // them (consecutive same-processor spans, in arrival order).
  std::string EventBytes;
  std::vector<Run> OpenRuns;
  std::vector<size_t> OpenRunBytes; ///< Serialized length of each run.
  uint64_t OpenEvents = 0;
  double OpenFirst = 0.0;
  double OpenLast = 0.0;
  // Flushed-block metadata for the close()-time index (tiny: ~40 bytes
  // per 64k-event block).
  std::vector<FlushedBlock> Blocks;
  std::vector<Run> BlockRuns;
};

/// Parses a LIMB buffer of either version.
///
/// Event records whose *values* are bad (unknown kind, negative time,
/// id out of range) keep the stream framed, so ParseMode::Lenient drops
/// them (counted in Options.Report) and keeps going.  Failures that
/// lose framing — truncation, varint overflow — are fatal in both
/// modes, as are ParseLimits violations.  In a v2 file with a valid
/// index, framing damage is confined to the enclosing block: strict
/// mode fails with the first bad block's error, lenient mode drops the
/// whole block (its declared events are counted as dropped) and keeps
/// going.
///
/// v2 buffers are decoded through the block-indexed reader at a single
/// thread; use parseTraceBinaryParallel (trace/ParallelBinary.h) to
/// decode blocks concurrently.  Results are bit-identical either way.
Expected<Trace> parseTraceBinary(std::string_view Data,
                                 const ParseOptions &Options = {});

/// Whole-file helpers.  saveTraceBinary writes atomically (temp file +
/// rename), so readers never observe a half-written trace.
Error saveTraceBinary(const Trace &T, const std::string &Path);
Expected<Trace> loadTraceBinary(const std::string &Path,
                                const ParseOptions &Options = {});

/// Loads a trace in either format, sniffing the magic: "LIMB" selects
/// the binary parser, anything else the text parser.  The file is
/// mmapped when possible and parsed zero-copy; both formats parse on
/// \p Threads threads (0 = all hardware threads, 1 = sequential) via
/// parseTraceTextParallel / parseTraceBinaryParallel, which are
/// bit-identical to their sequential counterparts at every thread
/// count.
Expected<Trace> loadTraceAuto(const std::string &Path,
                              const ParseOptions &Options = {},
                              unsigned Threads = 1);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_BINARYIO_H
