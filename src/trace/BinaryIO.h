//===- trace/BinaryIO.h - Compact binary trace format -----------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact little-endian binary encoding of traces ("LIMB" format),
/// for runs where the text format's size and parse cost matter.  Layout:
///
///   magic "LIMB"            4 bytes
///   version                 u32 (currently 1)
///   numProcs                u32
///   numRegions              u32, then per region: u32 length + bytes
///   numActivities           u32, then per activity: u32 length + bytes
///   per processor:          u64 event count, then per event:
///     f64 time, u8 kind, varint id, varint bytes
///
/// Fixed-width integers are little-endian; event ids and byte counts
/// use LEB128 varints (they are almost always tiny, which makes the
/// format ~2x smaller than the text form).  The reader validates magic,
/// version, counts and id ranges and reports structured errors.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_BINARYIO_H
#define LIMA_TRACE_BINARYIO_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <string>

namespace lima {
namespace trace {

/// Serializes \p T to the LIMB binary format.
std::string writeTraceBinary(const Trace &T);

/// Parses a LIMB buffer.
///
/// Event records whose *values* are bad (unknown kind, negative time,
/// id out of range) keep the stream framed, so ParseMode::Lenient drops
/// them (counted in Options.Report) and keeps going.  Failures that
/// lose framing — truncation, varint overflow — are fatal in both
/// modes, as are ParseLimits violations.
Expected<Trace> parseTraceBinary(std::string_view Data,
                                 const ParseOptions &Options = {});

/// Whole-file helpers.
Error saveTraceBinary(const Trace &T, const std::string &Path);
Expected<Trace> loadTraceBinary(const std::string &Path,
                                const ParseOptions &Options = {});

/// Loads a trace in either format, sniffing the magic: "LIMB" selects
/// the binary parser, anything else the text parser.  The file is
/// mmapped when possible and parsed zero-copy; text traces parse on
/// \p Threads threads (0 = all hardware threads, 1 = sequential) via
/// parseTraceTextParallel, which is bit-identical to the sequential
/// parser at every thread count.
Expected<Trace> loadTraceAuto(const std::string &Path,
                              const ParseOptions &Options = {},
                              unsigned Threads = 1);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_BINARYIO_H
