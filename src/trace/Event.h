//===- trace/Event.h - Trace event model ------------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-mortem trace event model.  A trace is a time-ordered stream of
/// events per processor; code regions (the paper's loops) and activities
/// (computation, point-to-point, collective, synchronization) are bracketed
/// by enter/exit and begin/end events.  Message events record communication
/// endpoints for validation and statistics.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_EVENT_H
#define LIMA_TRACE_EVENT_H

#include <cstdint>
#include <string_view>

namespace lima {
namespace trace {

/// Discriminator for Event.
enum class EventKind : uint8_t {
  RegionEnter,
  RegionExit,
  ActivityBegin,
  ActivityEnd,
  MessageSend,
  MessageRecv,
};

/// Short mnemonic used in the text trace format ("re", "rx", "ab", "ae",
/// "ms", "mr").
std::string_view eventKindMnemonic(EventKind Kind);

/// One trace record.  Field meaning depends on Kind:
///  - RegionEnter/RegionExit: Id is the region id.
///  - ActivityBegin/ActivityEnd: Id is the activity id.
///  - MessageSend/MessageRecv: Id is the peer rank, Bytes the payload.
struct Event {
  double Time = 0.0;
  uint32_t Proc = 0;
  EventKind Kind = EventKind::RegionEnter;
  uint32_t Id = 0;
  uint64_t Bytes = 0;
};

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_EVENT_H
