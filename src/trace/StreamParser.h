//===- trace/StreamParser.h - Incremental LIMATRACE parser ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An incremental parser for the LIMATRACE text format: feed it byte
/// chunks as they arrive (a tailed file, a pipe) and it emits events as
/// soon as their line is complete, without materializing a Trace.  The
/// grammar, limit checks, error taxonomy and lenient-mode drop rules
/// are the same as parseTraceText's; the only intentional difference is
/// that the stream has no end until finish(), so "missing header"
/// diagnostics are deferred to finish() and a trailing unterminated
/// line is parsed there.
///
/// Intended consumer: lima_monitor, which forwards emitted events into
/// a core::WindowedAnalyzer.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_STREAMPARSER_H
#define LIMA_TRACE_STREAMPARSER_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Event.h"
#include <string>
#include <string_view>
#include <vector>

namespace lima {
namespace trace {

/// Push-style LIMATRACE text parser.
class StreamParser {
public:
  explicit StreamParser(ParseOptions Options = {});

  /// Consumes \p Bytes; events from every newline-terminated line seen
  /// so far are appended to \p Out.  Header and declaration lines
  /// update the parser's tables instead of emitting events.  Errors
  /// follow parseTraceText: header problems and exceeded limits are
  /// fatal; malformed event records are fatal in strict mode and
  /// dropped + counted in lenient mode.
  Error feed(std::string_view Bytes, std::vector<Event> &Out);

  /// Ends the stream: parses a trailing unterminated line, then checks
  /// that the magic and 'procs' lines ever arrived.
  Error finish(std::vector<Event> &Out);

  /// True once the 'procs' line has been parsed (declarations and
  /// events can only follow it, so seeing any event implies this).
  bool headerComplete() const { return SawProcs; }
  unsigned numProcs() const { return NumProcs; }
  const std::vector<std::string> &regionNames() const { return Regions; }
  const std::vector<std::string> &activityNames() const { return Activities; }

  /// 1-based number of the last complete line consumed.
  size_t lineNumber() const { return LineNo; }
  uint64_t eventsParsed() const { return TotalEvents; }

private:
  Error parseLine(std::string_view RawLine, std::vector<Event> &Out);

  ParseOptions Options;
  std::string Buffer;      ///< Bytes of the current incomplete line.
  size_t StreamOffset = 0; ///< Byte offset of Buffer's start in the stream.
  size_t LineNo = 0;
  bool SawMagic = false;
  bool SawProcs = false;
  unsigned NumProcs = 0;
  std::vector<std::string> Regions;
  std::vector<std::string> Activities;
  uint64_t TotalEvents = 0;
  uint64_t AllocBytes = 0;
};

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_STREAMPARSER_H
