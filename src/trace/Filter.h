//===- trace/Filter.h - Trace slicing ---------------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Slicing of traces before analysis: keep only a subset of the code
/// regions and/or a time window.  A region *instance* survives the time
/// filter only if its whole [enter, exit] bracket lies inside the
/// window, so bracket integrity is preserved by construction.  Message
/// events are dropped by default — a slice generally separates matching
/// send/recv pairs, and the measurement-cube reduction does not need
/// them; pass KeepMessages to retain them (the sliced trace may then
/// fail the full validation).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_FILTER_H
#define LIMA_TRACE_FILTER_H

#include "support/Error.h"
#include "trace/Trace.h"
#include <limits>
#include <string>
#include <vector>

namespace lima {
namespace trace {

/// Filtering options.
struct FilterOptions {
  /// Region names to keep; empty keeps every region.
  std::vector<std::string> Regions;
  /// Time window; instances must lie entirely within [Begin, End].
  double TimeBegin = 0.0;
  double TimeEnd = std::numeric_limits<double>::infinity();
  /// Retain message events of surviving instances (see file comment).
  bool KeepMessages = false;
};

/// Produces the sliced trace.  The region/activity name tables are kept
/// complete (so region ids remain comparable across slices); only the
/// events are filtered.  Fails when a requested region name does not
/// exist or the window is empty.  The input must validate.
Expected<Trace> filterTrace(const Trace &T, const FilterOptions &Options);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_FILTER_H
