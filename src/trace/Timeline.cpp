//===- trace/Timeline.cpp - ASCII execution timelines ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Timeline.h"
#include "support/Format.h"
#include <algorithm>
#include <cassert>
#include <vector>

using namespace lima;
using namespace lima::trace;

std::string trace::renderTimeline(const Trace &T,
                                  const TimelineOptions &Options) {
  assert(Options.Width > 0 && "timeline needs at least one bucket");
  assert(!Options.ActivityChars.empty() && "need activity characters");

  // Find the span.
  double Span = 0.0;
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    for (const Event &E : T.events(Proc))
      Span = std::max(Span, E.Time);
  std::string Out;
  if (Span <= 0.0)
    return "(empty trace)\n";

  double BucketWidth = Span / Options.Width;
  auto activityChar = [&](uint32_t Activity) {
    return Options.ActivityChars[Activity % Options.ActivityChars.size()];
  };

  size_t LabelWidth = 0;
  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc)
    LabelWidth = std::max(LabelWidth,
                          ("p" + std::to_string(Proc + 1)).size());

  for (unsigned Proc = 0; Proc != T.numProcs(); ++Proc) {
    // Coverage[bucket][activity]: seconds of that activity in the bucket.
    std::vector<std::vector<double>> Coverage(
        Options.Width, std::vector<double>(T.numActivities(), 0.0));
    double Begin = 0.0;
    bool Open = false;
    uint32_t Current = 0;
    auto deposit = [&](double From, double To, uint32_t Activity) {
      if (To <= From)
        return;
      unsigned FirstBucket = std::min(
          Options.Width - 1, static_cast<unsigned>(From / BucketWidth));
      unsigned LastBucket = std::min(
          Options.Width - 1, static_cast<unsigned>(To / BucketWidth));
      for (unsigned B = FirstBucket; B <= LastBucket; ++B) {
        double BucketBegin = B * BucketWidth;
        double BucketEnd = BucketBegin + BucketWidth;
        double Overlap =
            std::min(To, BucketEnd) - std::max(From, BucketBegin);
        if (Overlap > 0.0)
          Coverage[B][Activity] += Overlap;
      }
    };
    for (const Event &E : T.events(Proc)) {
      if (E.Kind == EventKind::ActivityBegin) {
        Begin = E.Time;
        Current = E.Id;
        Open = true;
      } else if (E.Kind == EventKind::ActivityEnd && Open) {
        deposit(Begin, E.Time, Current);
        Open = false;
      }
    }

    std::string Label = "p" + std::to_string(Proc + 1);
    Out += leftJustify(Label, LabelWidth);
    Out += " |";
    for (unsigned B = 0; B != Options.Width; ++B) {
      double Best = 0.0;
      uint32_t BestActivity = 0;
      for (uint32_t A = 0; A != T.numActivities(); ++A) {
        if (Coverage[B][A] > Best) {
          Best = Coverage[B][A];
          BestActivity = A;
        }
      }
      Out += Best > 0.0 ? activityChar(BestActivity) : Options.IdleChar;
    }
    Out += "|\n";
  }

  // Time axis and legend.
  Out += leftJustify("", LabelWidth) + " 0";
  Out.append(Options.Width - 1, ' ');
  Out += formatGeneral(Span) + "s\n";
  Out += "legend:";
  for (uint32_t A = 0; A != T.numActivities(); ++A) {
    Out += ' ';
    Out += activityChar(A);
    Out += '=';
    Out += T.activityName(A);
  }
  Out += "  (blank = outside activities)\n";
  return Out;
}
