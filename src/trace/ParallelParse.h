//===- trace/ParallelParse.h - Sharded LIMATRACE text parsing ---*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel ingestion of the LIMATRACE text format: the header prologue
/// is parsed sequentially, then the event section is sharded at newline
/// boundaries and parsed concurrently on the shared thread pool.
///
/// The contract is bit-identical equivalence with parseTraceText at
/// every thread count:
///
///  - the produced Trace is identical (events merge in shard order,
///    which is file order, so per-processor event order is preserved);
///  - in strict mode the reported error is the sequentially-first one
///    (shards are scanned in byte order; the lowest-offset failure
///    wins) with the same code, line number, offset and message;
///  - in lenient mode the ParseReport (totals, per-code drop counts,
///    the first 16 samples) is identical, because shard-local reports
///    merge in shard order.
///
/// Inputs that sharding cannot reproduce exactly — declarations after
/// the first event line, or limits that could trip mid-section — are
/// detected in a cheap pre-scan and fall back to the sequential parser,
/// so equivalence holds unconditionally (see DESIGN.md, "Ingestion fast
/// path" for the determinism argument).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_PARALLELPARSE_H
#define LIMA_TRACE_PARALLELPARSE_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <string>
#include <string_view>

namespace lima {
namespace trace {

/// parseTraceText semantics on \p Threads threads (0 = all hardware
/// threads, 1 = the sequential parser on the calling thread).  Small
/// inputs run sequentially regardless.
Expected<Trace> parseTraceTextParallel(std::string_view Text,
                                       const ParseOptions &Options = {},
                                       unsigned Threads = 0);

/// Maps \p Path (zero-copy, see support/MappedFile.h) and parses it
/// with parseTraceTextParallel.
Expected<Trace> loadTraceParallel(const std::string &Path,
                                  const ParseOptions &Options = {},
                                  unsigned Threads = 0);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_PARALLELPARSE_H
