//===- trace/BinaryDetail.h - Shared LIMB reader internals ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared between the sequential LIMB reader/writer
/// (trace/BinaryIO.cpp) and the block-indexed sharded reader
/// (trace/ParallelBinary.cpp): format constants, the bounds-checked
/// byte reader, the v2 header/index model and the per-event value
/// validation that both the v1 record loop and the v2 block decoder
/// apply verbatim.  Internal to lima_trace.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_BINARYDETAIL_H
#define LIMA_TRACE_BINARYDETAIL_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

namespace lima {
namespace trace {
namespace detail {

constexpr char BinaryMagic[4] = {'L', 'I', 'M', 'B'};
constexpr uint32_t BinaryVersion1 = 1;
constexpr uint32_t BinaryVersion2 = 2;

/// v2 header flag: every index entry carries a CRC32 of its block's
/// payload bytes (written by default; readers tolerate files without).
constexpr uint32_t BinaryFlagBlockCrc = 1u << 0;
/// v2 header flag: the file was produced by the streaming writer, so
/// its header event total is patched before each block lands and may
/// exceed the events actually present.  A truncated streamed file is
/// an expected crash artifact, not corruption: the sequential walk
/// salvages the fully-flushed block prefix instead of failing.
constexpr uint32_t BinaryFlagStreamed = 1u << 1;
constexpr uint32_t BinaryKnownFlags = BinaryFlagBlockCrc | BinaryFlagStreamed;

/// The v2 footer is the last 24 bytes of the file:
///   u64 index offset, u32 index size, u32 index CRC32, char[8] magic.
constexpr char BinaryFooterMagic[8] = {'L', 'I', 'M', 'B', 'I', 'D', 'X', '2'};
constexpr size_t BinaryFooterSize = 8 + 4 + 4 + 8;

/// Smallest possible serialized index entry (all fixed-width fields
/// plus one run), used to sanity-bound a declared block count before
/// reserving index storage.
constexpr size_t BinaryMinIndexEntry = 8 + 4 + 4 + 8 + 8 + 4 + 4 + (4 + 4);

/// Bounds-checked reader over the input buffer.  Offsets in errors are
/// absolute (relative to the start of the file, including the magic).
class ByteReader {
public:
  ByteReader(std::string_view Data, size_t StartOffset, size_t MaxNameBytes)
      : Data(Data), Offset(StartOffset), MaxNameBytes(MaxNameBytes) {}

  Expected<uint64_t> readVarint() {
    uint64_t Value = 0;
    unsigned Shift = 0;
    while (true) {
      if (Offset >= Data.size())
        return makeParseError(ErrorCode::TruncatedInput, 0, Offset,
                              "binary trace truncated in varint at byte %zu",
                              Offset);
      uint8_t Byte = static_cast<uint8_t>(Data[Offset++]);
      if (Shift >= 64 || (Shift == 63 && Byte > 1))
        return makeParseError(ErrorCode::MalformedRecord, 0, Offset - 1,
                              "binary trace: varint overflow at byte %zu",
                              Offset - 1);
      Value |= static_cast<uint64_t>(Byte & 0x7F) << Shift;
      if ((Byte & 0x80) == 0)
        return Value;
      Shift += 7;
    }
  }

  template <typename T> Expected<T> read() {
    if (Offset + sizeof(T) > Data.size())
      return makeParseError(ErrorCode::TruncatedInput, 0, Offset,
                            "binary trace truncated at byte %zu", Offset);
    T Value;
    std::memcpy(&Value, Data.data() + Offset, sizeof(T));
    Offset += sizeof(T);
    return Value;
  }

  Expected<std::string> readString() {
    size_t LengthOffset = Offset;
    auto LengthOrErr = read<uint32_t>();
    if (auto Err = LengthOrErr.takeError())
      return Err;
    uint32_t Length = *LengthOrErr;
    if (Length > MaxNameBytes)
      return makeParseError(ErrorCode::LimitExceeded, 0, LengthOffset,
                            "binary trace: string length %u exceeds the "
                            "limit",
                            Length);
    if (Offset + Length > Data.size())
      return makeParseError(ErrorCode::TruncatedInput, 0, Offset,
                            "binary trace truncated in string at byte %zu",
                            Offset);
    std::string Str(Data.substr(Offset, Length));
    Offset += Length;
    return Str;
  }

  bool atEnd() const { return Offset == Data.size(); }
  size_t offset() const { return Offset; }

private:
  std::string_view Data;
  size_t Offset = 0;
  size_t MaxNameBytes;
};

/// Everything the header declares, minus the name tables (those land
/// directly in the Trace under construction).
struct BinaryHeader {
  uint32_t Version = 0;
  uint32_t Flags = 0;
  uint32_t NumProcs = 0;
  /// v2 only: total events across all processors, enabling the limits
  /// pre-check and the sequential no-index walk.
  uint64_t TotalEvents = 0;
  /// Byte offset of the first payload (event-section) byte.
  size_t PayloadStart = 0;
};

/// One (processor, count) slice of a block, in file order.
struct BlockRun {
  uint32_t Proc = 0;
  uint32_t Count = 0;
};

/// One index entry.  Runs live in BinaryIndex::Runs[FirstRun,
/// FirstRun+NumRuns).
struct BlockInfo {
  uint64_t Offset = 0; ///< Absolute file offset of the block payload.
  uint32_t Bytes = 0;  ///< Payload size in bytes.
  uint32_t Events = 0; ///< Events in the block (== sum of run counts).
  double FirstTime = 0.0;
  double LastTime = 0.0;
  uint32_t Crc = 0; ///< CRC32 of the payload (when the flag is set).
  uint32_t FirstRun = 0;
  uint32_t NumRuns = 0;
};

/// The validated block index of a v2 file.
struct BinaryIndex {
  std::vector<BlockInfo> Blocks;
  std::vector<BlockRun> Runs;
};

/// Parses magic/version/flags/processor count/name tables (and, for
/// v2, the event total) into \p H and a fresh Trace in \p TOut,
/// enforcing the same ParseLimits checks and allocation accounting as
/// the original v1 reader.  \p AllocBytes accumulates the accounting so
/// callers can extend it over the event section.
Error parseBinaryHeader(std::string_view Data, const ParseOptions &Options,
                        BinaryHeader &H, std::optional<Trace> &TOut,
                        uint64_t &AllocBytes);

/// Locates and validates the v2 footer and block index.  Returns
/// nullopt — never a hard error — when the file carries no usable
/// index: missing/truncated footer, bad footer magic, index bounds that
/// do not tile [PayloadStart, EOF), an index CRC mismatch, or entries
/// that are internally inconsistent (non-contiguous blocks, run counts
/// that do not sum to the block's event count, run processors out of
/// range, totals that disagree with the header).  Callers fall back to
/// the sequential no-index walk.
std::optional<BinaryIndex> readBinaryIndex(std::string_view Data,
                                           const BinaryHeader &H);

/// Validates one decoded event record's values exactly like the v1
/// reader: non-negative finite-or-not time semantics (`!(Time >= 0)`
/// rejects NaN and negatives), known kind, id within u32 and within the
/// table its kind indexes.  On success fills \p E (Time/Kind/Id/Bytes;
/// the caller sets Proc).
inline Error validateEventValues(double Time, uint8_t Kind, uint64_t Id,
                                 uint64_t Bytes, size_t RecordOffset,
                                 const Trace &T, Event &E) {
  E.Time = Time;
  E.Bytes = Bytes;
  if (!(Time >= 0.0))
    return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                          "binary trace: invalid event time at byte "
                          "%zu",
                          RecordOffset);
  if (Kind > static_cast<uint8_t>(EventKind::MessageRecv))
    return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                          "binary trace: unknown event kind %u at "
                          "byte %zu",
                          Kind, RecordOffset);
  E.Kind = static_cast<EventKind>(Kind);
  if (Id > UINT32_MAX)
    return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                          "binary trace: event id overflows u32 at "
                          "byte %zu",
                          RecordOffset);
  E.Id = static_cast<uint32_t>(Id);
  // Range-check ids before appending (append asserts, the parser
  // must reject gracefully).
  switch (E.Kind) {
  case EventKind::RegionEnter:
  case EventKind::RegionExit:
    if (E.Id >= T.numRegions())
      return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                            "binary trace: region id out of range at "
                            "byte %zu",
                            RecordOffset);
    break;
  case EventKind::ActivityBegin:
  case EventKind::ActivityEnd:
    if (E.Id >= T.numActivities())
      return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                            "binary trace: activity id out of range "
                            "at byte %zu",
                            RecordOffset);
    break;
  case EventKind::MessageSend:
  case EventKind::MessageRecv:
    if (E.Id >= T.numProcs())
      return makeParseError(ErrorCode::ValueOutOfRange, 0, RecordOffset,
                            "binary trace: peer out of range at byte "
                            "%zu",
                            RecordOffset);
    break;
  }
  return Error::success();
}

} // namespace detail
} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_BINARYDETAIL_H
