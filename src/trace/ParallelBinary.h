//===- trace/ParallelBinary.h - Sharded LIMB binary parsing -----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-parallel decoding of LIMB v2 traces.  The v2 block index
/// (trace/BinaryIO.h describes the format) gives each block's byte
/// range, event count and per-processor destination ranges up front, so
/// the reader can:
///
///   1. validate the header and index, and prove the ParseLimits event
///      and allocation bounds from the declared totals before touching
///      the payload;
///   2. pre-size every processor's columnar stream and hand each block
///      to a pool worker, which decodes straight into its final
///      positions — no per-event push_back, no merge copy;
///   3. merge per-block ParseReports in block order, so strict and
///      lenient results (counts, samples, error codes and offsets) are
///      bit-identical at any thread count.
///
/// Fallbacks keep every input readable: v1 buffers take the sequential
/// v1 path, and v2 buffers whose index cannot be validated (truncated
/// or missing footer, CRC mismatch, entries that do not tile the
/// payload) take a sequential self-framed walk of the blocks.  With a
/// valid index, payload damage is confined to the enclosing block:
/// strict mode fails with the lowest-offset bad block's error, lenient
/// mode drops the whole block and counts its declared events as
/// dropped.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_PARALLELBINARY_H
#define LIMA_TRACE_PARALLELBINARY_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <string>
#include <string_view>

namespace lima {
namespace trace {

/// Parses a LIMB buffer of either version, decoding v2 blocks on
/// \p Threads threads (0 = all hardware threads, 1 = sequential).
/// Bit-identical to parseTraceBinary at every thread count.
Expected<Trace> parseTraceBinaryParallel(std::string_view Data,
                                         const ParseOptions &Options = {},
                                         unsigned Threads = 0);

/// Maps \p Path and parses it with parseTraceBinaryParallel.
Expected<Trace> loadTraceBinaryParallel(const std::string &Path,
                                        const ParseOptions &Options = {},
                                        unsigned Threads = 0);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_PARALLELBINARY_H
