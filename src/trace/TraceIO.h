//===- trace/TraceIO.h - Text trace format ----------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text interchange format for traces, so that producers
/// other than the built-in simulator (e.g. a real MPI profiling layer) can
/// feed the analysis.  Format:
///
/// \code
///   LIMATRACE 1
///   procs 16
///   region 0 loop1
///   activity 0 computation
///   re <proc> <time> <region-id>      # region enter
///   rx <proc> <time> <region-id>      # region exit
///   ab <proc> <time> <activity-id>    # activity begin
///   ae <proc> <time> <activity-id>    # activity end
///   ms <proc> <time> <peer> <bytes>   # message send
///   mr <proc> <time> <peer> <bytes>   # message recv
/// \endcode
///
/// Lines starting with '#' and blank lines are ignored.  Times are
/// seconds, printed with 9 decimals (nanosecond resolution round-trip).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TRACEIO_H
#define LIMA_TRACE_TRACEIO_H

#include "support/Error.h"
#include "trace/Trace.h"
#include <string>

namespace lima {
namespace trace {

/// Serializes \p T to the text format.
std::string writeTraceText(const Trace &T);

/// Parses the text format.  Structural validation (validate()) is not
/// run automatically; callers decide how strict to be.
Expected<Trace> parseTraceText(std::string_view Text);

/// Convenience: writeTraceText to a file.
Error saveTrace(const Trace &T, const std::string &Path);

/// Convenience: read and parse a trace file.
Expected<Trace> loadTrace(const std::string &Path);

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TRACEIO_H
