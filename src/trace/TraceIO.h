//===- trace/TraceIO.h - Text trace format ----------------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text interchange format for traces, so that producers
/// other than the built-in simulator (e.g. a real MPI profiling layer) can
/// feed the analysis.  Format:
///
/// \code
///   LIMATRACE 1
///   procs 16
///   region 0 loop1
///   activity 0 computation
///   re <proc> <time> <region-id>      # region enter
///   rx <proc> <time> <region-id>      # region exit
///   ab <proc> <time> <activity-id>    # activity begin
///   ae <proc> <time> <activity-id>    # activity end
///   ms <proc> <time> <peer> <bytes>   # message send
///   mr <proc> <time> <peer> <bytes>   # message recv
/// \endcode
///
/// Lines starting with '#' and blank lines are ignored.  Times are
/// seconds, printed with 9 decimals (nanosecond resolution round-trip).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_TRACE_TRACEIO_H
#define LIMA_TRACE_TRACEIO_H

#include "support/Error.h"
#include "support/ParseLimits.h"
#include "trace/Trace.h"
#include <string>

namespace lima {
namespace trace {

/// Serializes \p T to the text format.
std::string writeTraceText(const Trace &T);

/// Parses the text format.  Structural validation (validate()) is not
/// run automatically; callers decide how strict to be.
///
/// Header lines (magic, 'procs', declarations) are always load-bearing:
/// errors there are fatal in either mode.  Event lines are records: in
/// ParseMode::Lenient a malformed event is dropped (and counted in
/// Options.Report) instead of aborting the parse.  ParseLimits
/// violations are fatal in both modes.
Expected<Trace> parseTraceText(std::string_view Text,
                               const ParseOptions &Options = {});

/// The pre-fast-path text parser, kept verbatim as the behavioral
/// reference: the golden-equivalence suite asserts parseTraceText and
/// parseTraceTextParallel match it bit for bit, and bench/perf_parallel
/// reports the fast path's speedup against it.  Not for production use;
/// it allocates per line and charges the old (looser) ParseLimits
/// allocation accounting.
Expected<Trace> parseTraceTextLegacy(std::string_view Text,
                                     const ParseOptions &Options = {});

/// Convenience: writeTraceText to a file.
Error saveTrace(const Trace &T, const std::string &Path);

/// Convenience: parse a trace file.  The file is mmapped when possible
/// (see support/MappedFile.h) and parsed in place; no byte of the file
/// is copied on the way to the parser.
Expected<Trace> loadTrace(const std::string &Path,
                          const ParseOptions &Options = {});

} // namespace trace
} // namespace lima

#endif // LIMA_TRACE_TRACEIO_H
