//===- trace/Event.cpp - Trace event model --------------------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Event.h"
#include "support/Compiler.h"

using namespace lima;
using namespace lima::trace;

std::string_view trace::eventKindMnemonic(EventKind Kind) {
  switch (Kind) {
  case EventKind::RegionEnter:
    return "re";
  case EventKind::RegionExit:
    return "rx";
  case EventKind::ActivityBegin:
    return "ab";
  case EventKind::ActivityEnd:
    return "ae";
  case EventKind::MessageSend:
    return "ms";
  case EventKind::MessageRecv:
    return "mr";
  }
  lima_unreachable("unknown EventKind");
}
