//===- stats/Standardize.cpp - Wall-clock time standardization ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "stats/Standardize.h"
#include "stats/Descriptive.h"
#include "support/MathUtils.h"
#include <cassert>
#include <cmath>

using namespace lima;

std::vector<double> stats::toShares(const std::vector<double> &Values) {
  for ([[maybe_unused]] double V : Values)
    assert(V >= 0.0 && "shares require non-negative values");
  double Total = sum(Values);
  std::vector<double> Shares(Values.size(), 0.0);
  if (Total <= 0.0)
    return Shares;
  for (size_t I = 0; I != Values.size(); ++I)
    Shares[I] = Values[I] / Total;
  return Shares;
}

bool stats::isShareVector(const std::vector<double> &Shares, double Tol) {
  bool AllZero = true;
  for (double S : Shares) {
    if (S < -Tol)
      return false;
    if (S != 0.0)
      AllZero = false;
  }
  if (AllZero)
    return true;
  return std::fabs(sum(Shares) - 1.0) <= Tol;
}
