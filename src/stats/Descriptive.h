//===- stats/Descriptive.h - Descriptive statistics -------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics over double vectors: moments, order statistics
/// and percentiles.  These are the primitives the dispersion indices of
/// Section 3 of the paper are assembled from.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_STATS_DESCRIPTIVE_H
#define LIMA_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <vector>

namespace lima {
namespace stats {

/// Sum using compensated summation.
double sum(const std::vector<double> &Values);

/// Arithmetic mean; asserts on empty input.
double mean(const std::vector<double> &Values);

/// Population variance (divides by N); asserts on empty input.
double variance(const std::vector<double> &Values);

/// Sample variance (divides by N-1); asserts on fewer than two values.
double sampleVariance(const std::vector<double> &Values);

/// Population standard deviation.
double stdDev(const std::vector<double> &Values);

/// Coefficient of variation stdDev/mean; asserts when the mean is zero.
double coefficientOfVariation(const std::vector<double> &Values);

/// Mean absolute deviation around the mean.
double meanAbsoluteDeviation(const std::vector<double> &Values);

/// Smallest element; asserts on empty input.
double minimum(const std::vector<double> &Values);

/// Largest element; asserts on empty input.
double maximum(const std::vector<double> &Values);

/// Median (linear-interpolated 50th percentile).
double median(const std::vector<double> &Values);

/// Percentile \p Q in [0, 100] with linear interpolation between order
/// statistics (the "linear" / R type-7 rule); asserts on empty input.
double percentile(const std::vector<double> &Values, double Q);

/// Index of the largest element; ties resolve to the first occurrence.
size_t argMax(const std::vector<double> &Values);

/// Index of the smallest element; ties resolve to the first occurrence.
size_t argMin(const std::vector<double> &Values);

} // namespace stats
} // namespace lima

#endif // LIMA_STATS_DESCRIPTIVE_H
