//===- stats/Descriptive.cpp - Descriptive statistics ---------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "stats/Descriptive.h"
#include "support/MathUtils.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lima;

double stats::sum(const std::vector<double> &Values) {
  return sumKahan(Values);
}

double stats::mean(const std::vector<double> &Values) {
  assert(!Values.empty() && "mean of empty vector");
  return sum(Values) / static_cast<double>(Values.size());
}

double stats::variance(const std::vector<double> &Values) {
  assert(!Values.empty() && "variance of empty vector");
  double Mu = mean(Values);
  KahanSum Acc;
  for (double V : Values)
    Acc.add((V - Mu) * (V - Mu));
  return Acc.total() / static_cast<double>(Values.size());
}

double stats::sampleVariance(const std::vector<double> &Values) {
  assert(Values.size() >= 2 && "sample variance needs at least two values");
  double Mu = mean(Values);
  KahanSum Acc;
  for (double V : Values)
    Acc.add((V - Mu) * (V - Mu));
  return Acc.total() / static_cast<double>(Values.size() - 1);
}

double stats::stdDev(const std::vector<double> &Values) {
  return std::sqrt(variance(Values));
}

double stats::coefficientOfVariation(const std::vector<double> &Values) {
  double Mu = mean(Values);
  assert(Mu != 0.0 && "coefficient of variation undefined for zero mean");
  return stdDev(Values) / Mu;
}

double stats::meanAbsoluteDeviation(const std::vector<double> &Values) {
  assert(!Values.empty() && "MAD of empty vector");
  double Mu = mean(Values);
  KahanSum Acc;
  for (double V : Values)
    Acc.add(std::fabs(V - Mu));
  return Acc.total() / static_cast<double>(Values.size());
}

double stats::minimum(const std::vector<double> &Values) {
  assert(!Values.empty() && "minimum of empty vector");
  return *std::min_element(Values.begin(), Values.end());
}

double stats::maximum(const std::vector<double> &Values) {
  assert(!Values.empty() && "maximum of empty vector");
  return *std::max_element(Values.begin(), Values.end());
}

double stats::median(const std::vector<double> &Values) {
  return percentile(Values, 50.0);
}

double stats::percentile(const std::vector<double> &Values, double Q) {
  assert(!Values.empty() && "percentile of empty vector");
  assert(Q >= 0.0 && Q <= 100.0 && "percentile must be in [0, 100]");
  std::vector<double> Sorted(Values);
  std::sort(Sorted.begin(), Sorted.end());
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = Q / 100.0 * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + Frac * (Sorted[Hi] - Sorted[Lo]);
}

size_t stats::argMax(const std::vector<double> &Values) {
  assert(!Values.empty() && "argMax of empty vector");
  return static_cast<size_t>(
      std::max_element(Values.begin(), Values.end()) - Values.begin());
}

size_t stats::argMin(const std::vector<double> &Values) {
  assert(!Values.empty() && "argMin of empty vector");
  return static_cast<size_t>(
      std::min_element(Values.begin(), Values.end()) - Values.begin());
}
