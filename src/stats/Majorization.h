//===- stats/Majorization.h - Majorization partial order --------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The majorization framework of Marshall & Olkin (1979) that the paper's
/// dispersion metrics are grounded in.  A vector x majorizes y (written
/// x ≻ y) when, after sorting both in decreasing order, every prefix sum
/// of x dominates the corresponding prefix sum of y and the totals agree.
/// Majorization partially orders share vectors by spread: the balanced
/// vector (1/P, ..., 1/P) is the unique minimum, a one-hot vector the
/// maximum.  An index of dispersion is consistent with this order exactly
/// when it is Schur-convex.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_STATS_MAJORIZATION_H
#define LIMA_STATS_MAJORIZATION_H

#include <vector>

namespace lima {
namespace stats {

/// True when \p X majorizes \p Y (x ≻ y).  Requires equal length and
/// equal sums (within \p Tol); asserts on length mismatch.
bool majorizes(const std::vector<double> &X, const std::vector<double> &Y,
               double Tol = 1e-9);

/// True when \p X and \p Y are comparable under majorization (either
/// direction holds).  Majorization is only a partial order, so
/// incomparable pairs are common — that is why scalar dispersion indices
/// exist in the first place.
bool majorizationComparable(const std::vector<double> &X,
                            const std::vector<double> &Y, double Tol = 1e-9);

/// Points of the Lorenz curve of \p Values: cumulative shares of the
/// sorted-increasing values at k/N, for k = 0..N.  First point is 0,
/// last point is 1.  For equal values the curve is the diagonal; more
/// spread bows the curve away from it.
std::vector<double> lorenzCurve(const std::vector<double> &Values);

/// Area between the diagonal and the Lorenz curve, in [0, 0.5); equals
/// Gini/2 for share vectors (trapezoidal rule).
double lorenzArea(const std::vector<double> &Values);

/// One step of a Robin Hood (Dalton) transfer: moves \p Amount from the
/// largest element to the smallest.  The result is majorized by the input
/// (it is strictly "more balanced"), which makes this the canonical way
/// to generate comparable pairs in property tests.  \p Amount must not
/// exceed half the max-min gap (or the transfer would overshoot).
std::vector<double> robinHoodTransfer(const std::vector<double> &Values,
                                      double Amount);

} // namespace stats
} // namespace lima

#endif // LIMA_STATS_MAJORIZATION_H
