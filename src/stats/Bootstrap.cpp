//===- stats/Bootstrap.cpp - Resampling confidence intervals --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "stats/Bootstrap.h"
#include "stats/Descriptive.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include "support/RNG.h"
#include <algorithm>
#include <cassert>

using namespace lima;
using namespace lima::stats;

BootstrapInterval stats::bootstrapCI(
    const std::vector<double> &Values,
    const std::function<double(const std::vector<double> &)> &Statistic,
    const BootstrapOptions &Options) {
  assert(!Values.empty() && "bootstrap of empty sample");
  assert(Options.Resamples > 0 && "need at least one resample");
  assert(Options.Confidence > 0.0 && Options.Confidence < 1.0 &&
         "confidence must be in (0, 1)");

  LIMA_SPAN("bootstrap");
  BootstrapInterval Interval;
  Interval.Confidence = Options.Confidence;
  Interval.Estimate = Statistic(Values);

  // Every resample owns an RNG derived from its index, so the statistic
  // in slot R is a pure function of (Seed, R) — independent of thread
  // count and scheduling.  Chunks reuse one resampling buffer each.
  std::vector<double> Statistics(Options.Resamples);
  parallelChunks(Options.Resamples, Options.Threads,
                 [&](size_t, size_t Begin, size_t End) {
                   LIMA_SPAN("bootstrap.batch");
                   LIMA_COUNTER_ADD("bootstrap.resamples", End - Begin);
                   LIMA_METRIC_COUNT("lima.bootstrap.resamples_total",
                                     End - Begin);
                   std::vector<double> Resampled(Values.size());
                   for (size_t R = Begin; R != End; ++R) {
                     RNG Rng(splitSeed(Options.Seed, R));
                     for (double &V : Resampled)
                       V = Values[Rng.uniformInt(Values.size())];
                     Statistics[R] = Statistic(Resampled);
                   }
                 });
  double Alpha = (1.0 - Options.Confidence) / 2.0;
  Interval.Lower = percentile(Statistics, 100.0 * Alpha);
  Interval.Upper = percentile(Statistics, 100.0 * (1.0 - Alpha));
  return Interval;
}

BootstrapInterval
stats::bootstrapImbalanceCI(const std::vector<double> &Times,
                            const BootstrapOptions &Options) {
  return bootstrapCI(
      Times, [](const std::vector<double> &Sample) {
        return imbalanceIndex(Sample);
      },
      Options);
}
