//===- stats/Dispersion.h - Indices of dispersion ---------------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Indices of dispersion from majorization theory (Marshall & Olkin 1979)
/// as used by Section 3 of the paper.  The paper's chosen index is the
/// Euclidean distance between the standardized times and the perfectly
/// balanced point (all shares equal to 1/P); the alternatives it lists
/// (variance, coefficient of variation, mean absolute deviation, maximum,
/// sum) are implemented too so that the choice can be ablated.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_STATS_DISPERSION_H
#define LIMA_STATS_DISPERSION_H

#include <string_view>
#include <vector>

namespace lima {
namespace stats {

/// The index-of-dispersion family.  All except Sum are Schur-convex on
/// share vectors, i.e. consistent with the majorization partial order.
enum class DispersionKind {
  /// sqrt(sum_p (x_p - mean)^2) — the paper's choice.
  Euclidean,
  /// Population variance of the shares.
  Variance,
  /// Standard deviation / mean.
  CoefficientOfVariation,
  /// Mean absolute deviation around the mean.
  MeanAbsoluteDeviation,
  /// Largest share.
  Maximum,
  /// Largest minus smallest share.
  Range,
  /// Gini coefficient (mean absolute pairwise difference / (2 * mean)).
  Gini,
};

/// All DispersionKind values, for parameterized sweeps.
extern const DispersionKind AllDispersionKinds[7];

/// Human-readable name of \p Kind ("euclidean", "variance", ...).
std::string_view dispersionKindName(DispersionKind Kind);

/// Computes the dispersion index of \p Kind over an already-standardized
/// share vector \p Shares.  An all-zero vector yields 0 for every kind.
double dispersionIndex(DispersionKind Kind, const std::vector<double> &Shares);

/// The paper's index of dispersion over *raw* wall-clock times: the times
/// are standardized to shares and the Euclidean distance from the
/// perfectly balanced point (all shares 1/P) is returned.
///
/// Equals 0 when all processors spent identical time (or none did), and
/// approaches sqrt(1 - 1/P) when one processor accounts for all the time.
double imbalanceIndex(const std::vector<double> &Times);

/// Like imbalanceIndex but with a selectable index family; raw times are
/// standardized first.
double imbalanceIndexAs(DispersionKind Kind, const std::vector<double> &Times);

/// The largest value imbalanceIndex can take for \p Count elements,
/// sqrt(1 - 1/Count); useful for normalizing indices to [0, 1].
double maxImbalanceIndex(size_t Count);

} // namespace stats
} // namespace lima

#endif // LIMA_STATS_DISPERSION_H
