//===- stats/Majorization.cpp - Majorization partial order ----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "stats/Majorization.h"
#include "stats/Descriptive.h"
#include "support/MathUtils.h"
#include <algorithm>
#include <cassert>
#include <functional>

using namespace lima;
using namespace lima::stats;

bool stats::majorizes(const std::vector<double> &X,
                      const std::vector<double> &Y, double Tol) {
  assert(X.size() == Y.size() && "majorization needs equal-length vectors");
  assert(!X.empty() && "majorization of empty vectors");
  std::vector<double> XS(X), YS(Y);
  std::sort(XS.begin(), XS.end(), std::greater<double>());
  std::sort(YS.begin(), YS.end(), std::greater<double>());
  KahanSum XAcc, YAcc;
  for (size_t K = 0; K != XS.size(); ++K) {
    XAcc.add(XS[K]);
    YAcc.add(YS[K]);
    if (K + 1 == XS.size()) {
      // Totals must agree for majorization to be defined.
      return almostEqual(XAcc.total(), YAcc.total(), Tol, Tol);
    }
    if (XAcc.total() < YAcc.total() - Tol)
      return false;
  }
  return true;
}

bool stats::majorizationComparable(const std::vector<double> &X,
                                   const std::vector<double> &Y, double Tol) {
  return majorizes(X, Y, Tol) || majorizes(Y, X, Tol);
}

std::vector<double> stats::lorenzCurve(const std::vector<double> &Values) {
  assert(!Values.empty() && "Lorenz curve of empty vector");
  std::vector<double> Sorted(Values);
  std::sort(Sorted.begin(), Sorted.end());
  double Total = sum(Sorted);
  std::vector<double> Curve;
  Curve.reserve(Sorted.size() + 1);
  Curve.push_back(0.0);
  if (Total <= 0.0) {
    // Degenerate all-zero input: define the curve as the diagonal.
    for (size_t K = 1; K <= Sorted.size(); ++K)
      Curve.push_back(static_cast<double>(K) /
                      static_cast<double>(Sorted.size()));
    return Curve;
  }
  KahanSum Acc;
  for (double V : Sorted) {
    Acc.add(V);
    Curve.push_back(Acc.total() / Total);
  }
  Curve.back() = 1.0;
  return Curve;
}

double stats::lorenzArea(const std::vector<double> &Values) {
  std::vector<double> Curve = lorenzCurve(Values);
  size_t N = Curve.size() - 1;
  KahanSum Area;
  for (size_t K = 0; K != N; ++K) {
    double X0 = static_cast<double>(K) / static_cast<double>(N);
    double X1 = static_cast<double>(K + 1) / static_cast<double>(N);
    double DiagMid = (X0 + X1) / 2.0;
    double CurveMid = (Curve[K] + Curve[K + 1]) / 2.0;
    Area.add((DiagMid - CurveMid) * (X1 - X0));
  }
  return Area.total();
}

std::vector<double> stats::robinHoodTransfer(const std::vector<double> &Values,
                                             double Amount) {
  assert(Amount >= 0.0 && "transfer amount must be non-negative");
  std::vector<double> Result(Values);
  size_t Rich = argMax(Result);
  size_t Poor = argMin(Result);
  if (Rich == Poor)
    return Result;
  assert(Amount <= (Result[Rich] - Result[Poor]) / 2.0 &&
         "transfer would overshoot the balanced point");
  Result[Rich] -= Amount;
  Result[Poor] += Amount;
  return Result;
}
