//===- stats/Standardize.h - Wall-clock time standardization ----*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standardization of wall-clock times as used in Section 3 of the paper:
/// "the standardized times are such that they sum to one, that is, they
/// are obtained by dividing the wall clock times by the corresponding
/// sum."  The resulting share vectors make dispersion indices a *relative*
/// measure, comparable across regions and activities of very different
/// absolute duration.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_STATS_STANDARDIZE_H
#define LIMA_STATS_STANDARDIZE_H

#include <vector>

namespace lima {
namespace stats {

/// Divides each element by the vector sum so the result sums to one.
///
/// All elements must be non-negative.  A zero-sum vector (an activity no
/// processor performed) standardizes to all-zeros, which downstream code
/// treats as "perfectly balanced, index 0".
std::vector<double> toShares(const std::vector<double> &Values);

/// True when \p Shares is a valid share vector: non-negative entries that
/// sum to 1 within tolerance, or all-zero.
bool isShareVector(const std::vector<double> &Shares, double Tol = 1e-9);

} // namespace stats
} // namespace lima

#endif // LIMA_STATS_STANDARDIZE_H
