//===- stats/Dispersion.cpp - Indices of dispersion -----------------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "stats/Dispersion.h"
#include "stats/Descriptive.h"
#include "stats/Standardize.h"
#include "support/Compiler.h"
#include "support/MathUtils.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace lima;
using namespace lima::stats;

const DispersionKind stats::AllDispersionKinds[7] = {
    DispersionKind::Euclidean,
    DispersionKind::Variance,
    DispersionKind::CoefficientOfVariation,
    DispersionKind::MeanAbsoluteDeviation,
    DispersionKind::Maximum,
    DispersionKind::Range,
    DispersionKind::Gini,
};

std::string_view stats::dispersionKindName(DispersionKind Kind) {
  switch (Kind) {
  case DispersionKind::Euclidean:
    return "euclidean";
  case DispersionKind::Variance:
    return "variance";
  case DispersionKind::CoefficientOfVariation:
    return "cv";
  case DispersionKind::MeanAbsoluteDeviation:
    return "mad";
  case DispersionKind::Maximum:
    return "max";
  case DispersionKind::Range:
    return "range";
  case DispersionKind::Gini:
    return "gini";
  }
  lima_unreachable("unknown DispersionKind");
}

static bool isAllZero(const std::vector<double> &Values) {
  return std::all_of(Values.begin(), Values.end(),
                     [](double V) { return V == 0.0; });
}

static double euclideanFromMean(const std::vector<double> &Shares) {
  double Mean = mean(Shares);
  KahanSum Acc;
  for (double S : Shares)
    Acc.add((S - Mean) * (S - Mean));
  return std::sqrt(Acc.total());
}

static double giniCoefficient(const std::vector<double> &Shares) {
  // Mean absolute pairwise difference over twice the mean, computed in
  // O(n log n) via the sorted form.
  size_t N = Shares.size();
  assert(N > 0 && "gini of empty vector");
  std::vector<double> Sorted(Shares);
  std::sort(Sorted.begin(), Sorted.end());
  double Total = sum(Sorted);
  if (Total <= 0.0)
    return 0.0;
  KahanSum Weighted;
  for (size_t I = 0; I != N; ++I)
    Weighted.add((2.0 * static_cast<double>(I + 1) - static_cast<double>(N) -
                  1.0) *
                 Sorted[I]);
  return Weighted.total() / (static_cast<double>(N) * Total);
}

double stats::dispersionIndex(DispersionKind Kind,
                              const std::vector<double> &Shares) {
  assert(!Shares.empty() && "dispersion of empty vector");
  assert(isShareVector(Shares) && "dispersionIndex expects standardized data");
  if (isAllZero(Shares))
    return 0.0;
  switch (Kind) {
  case DispersionKind::Euclidean:
    return euclideanFromMean(Shares);
  case DispersionKind::Variance:
    return variance(Shares);
  case DispersionKind::CoefficientOfVariation:
    return coefficientOfVariation(Shares);
  case DispersionKind::MeanAbsoluteDeviation:
    return meanAbsoluteDeviation(Shares);
  case DispersionKind::Maximum:
    return maximum(Shares);
  case DispersionKind::Range:
    return maximum(Shares) - minimum(Shares);
  case DispersionKind::Gini:
    return giniCoefficient(Shares);
  }
  lima_unreachable("unknown DispersionKind");
}

double stats::imbalanceIndex(const std::vector<double> &Times) {
  return imbalanceIndexAs(DispersionKind::Euclidean, Times);
}

double stats::imbalanceIndexAs(DispersionKind Kind,
                               const std::vector<double> &Times) {
  return dispersionIndex(Kind, toShares(Times));
}

double stats::maxImbalanceIndex(size_t Count) {
  assert(Count > 0 && "need at least one element");
  return std::sqrt(1.0 - 1.0 / static_cast<double>(Count));
}
