//===- stats/Bootstrap.h - Resampling confidence intervals ------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bootstrap confidence intervals for the dispersion indices — one of
/// the "new criteria for the identification ... of performance
/// inefficiencies" the paper's future work asks for.  A measured index
/// on P processors is a point estimate; resampling the processors with
/// replacement yields a percentile interval, so an analyst can tell a
/// genuinely imbalanced region from one whose index is within sampling
/// noise of a balanced run.
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_STATS_BOOTSTRAP_H
#define LIMA_STATS_BOOTSTRAP_H

#include "stats/Dispersion.h"
#include <cstdint>
#include <functional>
#include <vector>

namespace lima {
namespace stats {

/// A percentile bootstrap interval.
struct BootstrapInterval {
  /// Statistic on the original sample.
  double Estimate = 0.0;
  /// Lower / upper percentile bounds.
  double Lower = 0.0;
  double Upper = 0.0;
  /// Confidence level used (e.g. 0.95).
  double Confidence = 0.95;
};

/// Bootstrap configuration.
struct BootstrapOptions {
  unsigned Resamples = 1000;
  double Confidence = 0.95;
  uint64_t Seed = 12345;
  /// Worker threads for the resampling loop (0 = all hardware threads,
  /// 1 = serial).  Every resample R draws from its own RNG seeded
  /// splitSeed(Seed, R) and writes its statistic into slot R, so the
  /// interval is bit-identical at any thread count.
  unsigned Threads = 0;
};

/// Percentile bootstrap of an arbitrary statistic of \p Values.
/// Asserts on empty input and Resamples == 0.
BootstrapInterval
bootstrapCI(const std::vector<double> &Values,
            const std::function<double(const std::vector<double> &)>
                &Statistic,
            const BootstrapOptions &Options = {});

/// Convenience: bootstrap interval of the imbalance index (standardize
/// then Euclidean dispersion) of \p Times.
BootstrapInterval bootstrapImbalanceCI(const std::vector<double> &Times,
                                       const BootstrapOptions &Options = {});

} // namespace stats
} // namespace lima

#endif // LIMA_STATS_BOOTSTRAP_H
