file(REMOVE_RECURSE
  "CMakeFiles/wait_states_test.dir/WaitStatesTest.cpp.o"
  "CMakeFiles/wait_states_test.dir/WaitStatesTest.cpp.o.d"
  "wait_states_test"
  "wait_states_test.pdb"
  "wait_states_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_states_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
