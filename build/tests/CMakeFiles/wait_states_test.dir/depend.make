# Empty dependencies file for wait_states_test.
# This may be replaced when dependencies are built.
