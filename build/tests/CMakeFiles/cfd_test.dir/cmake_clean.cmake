file(REMOVE_RECURSE
  "CMakeFiles/cfd_test.dir/CfdTest.cpp.o"
  "CMakeFiles/cfd_test.dir/CfdTest.cpp.o.d"
  "cfd_test"
  "cfd_test.pdb"
  "cfd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
