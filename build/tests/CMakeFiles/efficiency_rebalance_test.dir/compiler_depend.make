# Empty compiler generated dependencies file for efficiency_rebalance_test.
# This may be replaced when dependencies are built.
