file(REMOVE_RECURSE
  "CMakeFiles/efficiency_rebalance_test.dir/EfficiencyRebalanceTest.cpp.o"
  "CMakeFiles/efficiency_rebalance_test.dir/EfficiencyRebalanceTest.cpp.o.d"
  "efficiency_rebalance_test"
  "efficiency_rebalance_test.pdb"
  "efficiency_rebalance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_rebalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
