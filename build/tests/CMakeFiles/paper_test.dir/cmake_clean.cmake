file(REMOVE_RECURSE
  "CMakeFiles/paper_test.dir/PaperReproductionTest.cpp.o"
  "CMakeFiles/paper_test.dir/PaperReproductionTest.cpp.o.d"
  "paper_test"
  "paper_test.pdb"
  "paper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
