# Empty dependencies file for paper_test.
# This may be replaced when dependencies are built.
