
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CompareTest.cpp" "tests/CMakeFiles/compare_test.dir/CompareTest.cpp.o" "gcc" "tests/CMakeFiles/compare_test.dir/CompareTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/cfd/CMakeFiles/lima_cfd.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/gallery/CMakeFiles/lima_gallery.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lima_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lima_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/lima_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lima_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lima_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lima_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
