# Empty dependencies file for analysis_properties_test.
# This may be replaced when dependencies are built.
