file(REMOVE_RECURSE
  "CMakeFiles/analysis_properties_test.dir/AnalysisPropertiesTest.cpp.o"
  "CMakeFiles/analysis_properties_test.dir/AnalysisPropertiesTest.cpp.o.d"
  "analysis_properties_test"
  "analysis_properties_test.pdb"
  "analysis_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
