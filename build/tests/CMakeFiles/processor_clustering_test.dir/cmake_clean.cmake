file(REMOVE_RECURSE
  "CMakeFiles/processor_clustering_test.dir/ProcessorClusteringTest.cpp.o"
  "CMakeFiles/processor_clustering_test.dir/ProcessorClusteringTest.cpp.o.d"
  "processor_clustering_test"
  "processor_clustering_test.pdb"
  "processor_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
