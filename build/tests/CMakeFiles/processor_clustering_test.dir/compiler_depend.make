# Empty compiler generated dependencies file for processor_clustering_test.
# This may be replaced when dependencies are built.
