file(REMOVE_RECURSE
  "CMakeFiles/gallery_test.dir/GalleryTest.cpp.o"
  "CMakeFiles/gallery_test.dir/GalleryTest.cpp.o.d"
  "gallery_test"
  "gallery_test.pdb"
  "gallery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gallery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
