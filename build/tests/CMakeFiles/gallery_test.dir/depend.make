# Empty dependencies file for gallery_test.
# This may be replaced when dependencies are built.
