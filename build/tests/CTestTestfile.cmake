# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/paper_test[1]_include.cmake")
include("/root/repo/build/tests/cfd_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trace_stats_test[1]_include.cmake")
include("/root/repo/build/tests/diagnosis_test[1]_include.cmake")
include("/root/repo/build/tests/phase_test[1]_include.cmake")
include("/root/repo/build/tests/gallery_test[1]_include.cmake")
include("/root/repo/build/tests/counting_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_properties_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/cube_io_test[1]_include.cmake")
include("/root/repo/build/tests/efficiency_rebalance_test[1]_include.cmake")
include("/root/repo/build/tests/binary_io_test[1]_include.cmake")
include("/root/repo/build/tests/compare_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/html_report_test[1]_include.cmake")
include("/root/repo/build/tests/processor_clustering_test[1]_include.cmake")
include("/root/repo/build/tests/wait_states_test[1]_include.cmake")
