# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cfd_analysis "/root/repo/build/examples/cfd_analysis" "--iterations" "3" "--procs" "8" "--save-trace" "/root/repo/build/examples/smoke.trace")
set_tests_properties(example_cfd_analysis PROPERTIES  FIXTURES_SETUP "smoke_trace" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_imbalance_sweep "/root/repo/build/examples/imbalance_sweep" "--steps" "3" "--iterations" "2")
set_tests_properties(example_imbalance_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lima_analyze "/root/repo/build/examples/lima_analyze" "/root/repo/build/examples/smoke.trace" "--diagnose" "--phases" "--counting" "--waitstates" "--timeline" "--traffic" "--patterns" "--html" "/root/repo/build/examples/smoke.html")
set_tests_properties(example_lima_analyze PROPERTIES  FIXTURES_REQUIRED "smoke_trace" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_farm_tuning "/root/repo/build/examples/farm_tuning")
set_tests_properties(example_farm_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_report "/root/repo/build/examples/paper_report" "--csv" "/root/repo/build/examples/smoke_cube.csv" "--html" "/root/repo/build/examples/smoke_paper.html")
set_tests_properties(example_paper_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_make_testbed "/root/repo/build/examples/make_testbed" "--dir" "/root/repo/build/examples")
set_tests_properties(example_make_testbed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
