# Empty compiler generated dependencies file for make_testbed.
# This may be replaced when dependencies are built.
