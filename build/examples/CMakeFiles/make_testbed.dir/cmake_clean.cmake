file(REMOVE_RECURSE
  "CMakeFiles/make_testbed.dir/make_testbed.cpp.o"
  "CMakeFiles/make_testbed.dir/make_testbed.cpp.o.d"
  "make_testbed"
  "make_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
