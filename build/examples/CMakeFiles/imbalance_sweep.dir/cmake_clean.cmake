file(REMOVE_RECURSE
  "CMakeFiles/imbalance_sweep.dir/imbalance_sweep.cpp.o"
  "CMakeFiles/imbalance_sweep.dir/imbalance_sweep.cpp.o.d"
  "imbalance_sweep"
  "imbalance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imbalance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
