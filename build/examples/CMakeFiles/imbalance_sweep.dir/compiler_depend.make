# Empty compiler generated dependencies file for imbalance_sweep.
# This may be replaced when dependencies are built.
