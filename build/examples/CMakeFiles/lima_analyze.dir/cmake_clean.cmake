file(REMOVE_RECURSE
  "CMakeFiles/lima_analyze.dir/lima_analyze.cpp.o"
  "CMakeFiles/lima_analyze.dir/lima_analyze.cpp.o.d"
  "lima_analyze"
  "lima_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
