# Empty compiler generated dependencies file for lima_analyze.
# This may be replaced when dependencies are built.
