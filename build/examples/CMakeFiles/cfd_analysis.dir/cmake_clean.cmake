file(REMOVE_RECURSE
  "CMakeFiles/cfd_analysis.dir/cfd_analysis.cpp.o"
  "CMakeFiles/cfd_analysis.dir/cfd_analysis.cpp.o.d"
  "cfd_analysis"
  "cfd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
