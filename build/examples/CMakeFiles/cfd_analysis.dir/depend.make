# Empty dependencies file for cfd_analysis.
# This may be replaced when dependencies are built.
