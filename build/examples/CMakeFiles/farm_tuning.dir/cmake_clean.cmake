file(REMOVE_RECURSE
  "CMakeFiles/farm_tuning.dir/farm_tuning.cpp.o"
  "CMakeFiles/farm_tuning.dir/farm_tuning.cpp.o.d"
  "farm_tuning"
  "farm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
