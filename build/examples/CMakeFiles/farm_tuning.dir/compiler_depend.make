# Empty compiler generated dependencies file for farm_tuning.
# This may be replaced when dependencies are built.
