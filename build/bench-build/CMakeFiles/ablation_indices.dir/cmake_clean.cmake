file(REMOVE_RECURSE
  "../bench/ablation_indices"
  "../bench/ablation_indices.pdb"
  "CMakeFiles/ablation_indices.dir/ablation_indices.cpp.o"
  "CMakeFiles/ablation_indices.dir/ablation_indices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_indices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
