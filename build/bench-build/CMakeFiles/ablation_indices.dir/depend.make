# Empty dependencies file for ablation_indices.
# This may be replaced when dependencies are built.
