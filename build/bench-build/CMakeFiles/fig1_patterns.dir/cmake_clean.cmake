file(REMOVE_RECURSE
  "../bench/fig1_patterns"
  "../bench/fig1_patterns.pdb"
  "CMakeFiles/fig1_patterns.dir/fig1_patterns.cpp.o"
  "CMakeFiles/fig1_patterns.dir/fig1_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
