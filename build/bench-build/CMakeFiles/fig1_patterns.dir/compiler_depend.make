# Empty compiler generated dependencies file for fig1_patterns.
# This may be replaced when dependencies are built.
