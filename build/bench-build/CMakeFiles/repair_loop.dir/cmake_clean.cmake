file(REMOVE_RECURSE
  "../bench/repair_loop"
  "../bench/repair_loop.pdb"
  "CMakeFiles/repair_loop.dir/repair_loop.cpp.o"
  "CMakeFiles/repair_loop.dir/repair_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
