# Empty dependencies file for repair_loop.
# This may be replaced when dependencies are built.
