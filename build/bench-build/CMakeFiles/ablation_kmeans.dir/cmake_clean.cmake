file(REMOVE_RECURSE
  "../bench/ablation_kmeans"
  "../bench/ablation_kmeans.pdb"
  "CMakeFiles/ablation_kmeans.dir/ablation_kmeans.cpp.o"
  "CMakeFiles/ablation_kmeans.dir/ablation_kmeans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
