# Empty dependencies file for ablation_kmeans.
# This may be replaced when dependencies are built.
