# Empty compiler generated dependencies file for wait_states.
# This may be replaced when dependencies are built.
