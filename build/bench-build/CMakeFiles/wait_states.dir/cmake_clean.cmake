file(REMOVE_RECURSE
  "../bench/wait_states"
  "../bench/wait_states.pdb"
  "CMakeFiles/wait_states.dir/wait_states.cpp.o"
  "CMakeFiles/wait_states.dir/wait_states.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
