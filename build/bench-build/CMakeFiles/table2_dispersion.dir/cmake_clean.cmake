file(REMOVE_RECURSE
  "../bench/table2_dispersion"
  "../bench/table2_dispersion.pdb"
  "CMakeFiles/table2_dispersion.dir/table2_dispersion.cpp.o"
  "CMakeFiles/table2_dispersion.dir/table2_dispersion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dispersion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
