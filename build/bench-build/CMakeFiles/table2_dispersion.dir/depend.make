# Empty dependencies file for table2_dispersion.
# This may be replaced when dependencies are built.
