file(REMOVE_RECURSE
  "../bench/ablation_ranking"
  "../bench/ablation_ranking.pdb"
  "CMakeFiles/ablation_ranking.dir/ablation_ranking.cpp.o"
  "CMakeFiles/ablation_ranking.dir/ablation_ranking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
