file(REMOVE_RECURSE
  "../bench/cluster_regions"
  "../bench/cluster_regions.pdb"
  "CMakeFiles/cluster_regions.dir/cluster_regions.cpp.o"
  "CMakeFiles/cluster_regions.dir/cluster_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
