# Empty compiler generated dependencies file for cluster_regions.
# This may be replaced when dependencies are built.
