# Empty dependencies file for program_gallery.
# This may be replaced when dependencies are built.
