file(REMOVE_RECURSE
  "../bench/program_gallery"
  "../bench/program_gallery.pdb"
  "CMakeFiles/program_gallery.dir/program_gallery.cpp.o"
  "CMakeFiles/program_gallery.dir/program_gallery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
