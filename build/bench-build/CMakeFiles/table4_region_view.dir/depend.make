# Empty dependencies file for table4_region_view.
# This may be replaced when dependencies are built.
