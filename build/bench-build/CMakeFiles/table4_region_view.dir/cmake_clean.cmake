file(REMOVE_RECURSE
  "../bench/table4_region_view"
  "../bench/table4_region_view.pdb"
  "CMakeFiles/table4_region_view.dir/table4_region_view.cpp.o"
  "CMakeFiles/table4_region_view.dir/table4_region_view.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_region_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
