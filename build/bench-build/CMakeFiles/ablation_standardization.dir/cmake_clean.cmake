file(REMOVE_RECURSE
  "../bench/ablation_standardization"
  "../bench/ablation_standardization.pdb"
  "CMakeFiles/ablation_standardization.dir/ablation_standardization.cpp.o"
  "CMakeFiles/ablation_standardization.dir/ablation_standardization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_standardization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
