# Empty compiler generated dependencies file for ablation_standardization.
# This may be replaced when dependencies are built.
