# Empty compiler generated dependencies file for heterogeneous_node.
# This may be replaced when dependencies are built.
