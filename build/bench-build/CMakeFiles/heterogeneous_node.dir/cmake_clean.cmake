file(REMOVE_RECURSE
  "../bench/heterogeneous_node"
  "../bench/heterogeneous_node.pdb"
  "CMakeFiles/heterogeneous_node.dir/heterogeneous_node.cpp.o"
  "CMakeFiles/heterogeneous_node.dir/heterogeneous_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
