file(REMOVE_RECURSE
  "../bench/phase_drift"
  "../bench/phase_drift.pdb"
  "CMakeFiles/phase_drift.dir/phase_drift.cpp.o"
  "CMakeFiles/phase_drift.dir/phase_drift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
