# Empty dependencies file for phase_drift.
# This may be replaced when dependencies are built.
