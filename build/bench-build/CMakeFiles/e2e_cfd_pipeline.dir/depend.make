# Empty dependencies file for e2e_cfd_pipeline.
# This may be replaced when dependencies are built.
