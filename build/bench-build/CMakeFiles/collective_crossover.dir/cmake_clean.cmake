file(REMOVE_RECURSE
  "../bench/collective_crossover"
  "../bench/collective_crossover.pdb"
  "CMakeFiles/collective_crossover.dir/collective_crossover.cpp.o"
  "CMakeFiles/collective_crossover.dir/collective_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
