# Empty compiler generated dependencies file for collective_crossover.
# This may be replaced when dependencies are built.
