file(REMOVE_RECURSE
  "../bench/processor_view"
  "../bench/processor_view.pdb"
  "CMakeFiles/processor_view.dir/processor_view.cpp.o"
  "CMakeFiles/processor_view.dir/processor_view.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
