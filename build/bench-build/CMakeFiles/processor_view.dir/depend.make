# Empty dependencies file for processor_view.
# This may be replaced when dependencies are built.
