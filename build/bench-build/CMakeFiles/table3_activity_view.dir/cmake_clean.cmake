file(REMOVE_RECURSE
  "../bench/table3_activity_view"
  "../bench/table3_activity_view.pdb"
  "CMakeFiles/table3_activity_view.dir/table3_activity_view.cpp.o"
  "CMakeFiles/table3_activity_view.dir/table3_activity_view.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_activity_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
