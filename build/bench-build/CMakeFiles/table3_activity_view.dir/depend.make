# Empty dependencies file for table3_activity_view.
# This may be replaced when dependencies are built.
