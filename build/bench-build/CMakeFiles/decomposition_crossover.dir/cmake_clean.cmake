file(REMOVE_RECURSE
  "../bench/decomposition_crossover"
  "../bench/decomposition_crossover.pdb"
  "CMakeFiles/decomposition_crossover.dir/decomposition_crossover.cpp.o"
  "CMakeFiles/decomposition_crossover.dir/decomposition_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
