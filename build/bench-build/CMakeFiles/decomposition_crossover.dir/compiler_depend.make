# Empty compiler generated dependencies file for decomposition_crossover.
# This may be replaced when dependencies are built.
