# Empty compiler generated dependencies file for counting_view.
# This may be replaced when dependencies are built.
