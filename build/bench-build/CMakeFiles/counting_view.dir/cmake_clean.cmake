file(REMOVE_RECURSE
  "../bench/counting_view"
  "../bench/counting_view.pdb"
  "CMakeFiles/counting_view.dir/counting_view.cpp.o"
  "CMakeFiles/counting_view.dir/counting_view.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
