# Empty compiler generated dependencies file for fig2_patterns.
# This may be replaced when dependencies are built.
