file(REMOVE_RECURSE
  "../bench/fig2_patterns"
  "../bench/fig2_patterns.pdb"
  "CMakeFiles/fig2_patterns.dir/fig2_patterns.cpp.o"
  "CMakeFiles/fig2_patterns.dir/fig2_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
