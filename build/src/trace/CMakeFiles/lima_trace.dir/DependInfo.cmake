
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/BinaryIO.cpp" "src/trace/CMakeFiles/lima_trace.dir/BinaryIO.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/BinaryIO.cpp.o.d"
  "/root/repo/src/trace/Event.cpp" "src/trace/CMakeFiles/lima_trace.dir/Event.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/Event.cpp.o.d"
  "/root/repo/src/trace/Filter.cpp" "src/trace/CMakeFiles/lima_trace.dir/Filter.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/Filter.cpp.o.d"
  "/root/repo/src/trace/Timeline.cpp" "src/trace/CMakeFiles/lima_trace.dir/Timeline.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/Timeline.cpp.o.d"
  "/root/repo/src/trace/Trace.cpp" "src/trace/CMakeFiles/lima_trace.dir/Trace.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/Trace.cpp.o.d"
  "/root/repo/src/trace/TraceIO.cpp" "src/trace/CMakeFiles/lima_trace.dir/TraceIO.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/TraceIO.cpp.o.d"
  "/root/repo/src/trace/TraceStats.cpp" "src/trace/CMakeFiles/lima_trace.dir/TraceStats.cpp.o" "gcc" "src/trace/CMakeFiles/lima_trace.dir/TraceStats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lima_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
