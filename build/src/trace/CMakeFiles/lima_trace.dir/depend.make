# Empty dependencies file for lima_trace.
# This may be replaced when dependencies are built.
