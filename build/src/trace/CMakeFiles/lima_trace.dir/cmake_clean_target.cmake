file(REMOVE_RECURSE
  "liblima_trace.a"
)
