file(REMOVE_RECURSE
  "CMakeFiles/lima_trace.dir/BinaryIO.cpp.o"
  "CMakeFiles/lima_trace.dir/BinaryIO.cpp.o.d"
  "CMakeFiles/lima_trace.dir/Event.cpp.o"
  "CMakeFiles/lima_trace.dir/Event.cpp.o.d"
  "CMakeFiles/lima_trace.dir/Filter.cpp.o"
  "CMakeFiles/lima_trace.dir/Filter.cpp.o.d"
  "CMakeFiles/lima_trace.dir/Timeline.cpp.o"
  "CMakeFiles/lima_trace.dir/Timeline.cpp.o.d"
  "CMakeFiles/lima_trace.dir/Trace.cpp.o"
  "CMakeFiles/lima_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/lima_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/lima_trace.dir/TraceIO.cpp.o.d"
  "CMakeFiles/lima_trace.dir/TraceStats.cpp.o"
  "CMakeFiles/lima_trace.dir/TraceStats.cpp.o.d"
  "liblima_trace.a"
  "liblima_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
