file(REMOVE_RECURSE
  "liblima_support.a"
)
