# Empty compiler generated dependencies file for lima_support.
# This may be replaced when dependencies are built.
