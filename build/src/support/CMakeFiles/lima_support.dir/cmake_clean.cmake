file(REMOVE_RECURSE
  "CMakeFiles/lima_support.dir/CSV.cpp.o"
  "CMakeFiles/lima_support.dir/CSV.cpp.o.d"
  "CMakeFiles/lima_support.dir/CommandLine.cpp.o"
  "CMakeFiles/lima_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/lima_support.dir/Error.cpp.o"
  "CMakeFiles/lima_support.dir/Error.cpp.o.d"
  "CMakeFiles/lima_support.dir/FileUtils.cpp.o"
  "CMakeFiles/lima_support.dir/FileUtils.cpp.o.d"
  "CMakeFiles/lima_support.dir/Format.cpp.o"
  "CMakeFiles/lima_support.dir/Format.cpp.o.d"
  "CMakeFiles/lima_support.dir/MathUtils.cpp.o"
  "CMakeFiles/lima_support.dir/MathUtils.cpp.o.d"
  "CMakeFiles/lima_support.dir/RNG.cpp.o"
  "CMakeFiles/lima_support.dir/RNG.cpp.o.d"
  "CMakeFiles/lima_support.dir/StringUtils.cpp.o"
  "CMakeFiles/lima_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/lima_support.dir/TableFormatter.cpp.o"
  "CMakeFiles/lima_support.dir/TableFormatter.cpp.o.d"
  "CMakeFiles/lima_support.dir/raw_ostream.cpp.o"
  "CMakeFiles/lima_support.dir/raw_ostream.cpp.o.d"
  "liblima_support.a"
  "liblima_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
