file(REMOVE_RECURSE
  "CMakeFiles/lima_cluster.dir/ClusterSelection.cpp.o"
  "CMakeFiles/lima_cluster.dir/ClusterSelection.cpp.o.d"
  "CMakeFiles/lima_cluster.dir/Distance.cpp.o"
  "CMakeFiles/lima_cluster.dir/Distance.cpp.o.d"
  "CMakeFiles/lima_cluster.dir/Hierarchical.cpp.o"
  "CMakeFiles/lima_cluster.dir/Hierarchical.cpp.o.d"
  "CMakeFiles/lima_cluster.dir/KMeans.cpp.o"
  "CMakeFiles/lima_cluster.dir/KMeans.cpp.o.d"
  "CMakeFiles/lima_cluster.dir/Silhouette.cpp.o"
  "CMakeFiles/lima_cluster.dir/Silhouette.cpp.o.d"
  "liblima_cluster.a"
  "liblima_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
