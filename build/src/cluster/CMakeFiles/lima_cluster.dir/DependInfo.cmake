
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/ClusterSelection.cpp" "src/cluster/CMakeFiles/lima_cluster.dir/ClusterSelection.cpp.o" "gcc" "src/cluster/CMakeFiles/lima_cluster.dir/ClusterSelection.cpp.o.d"
  "/root/repo/src/cluster/Distance.cpp" "src/cluster/CMakeFiles/lima_cluster.dir/Distance.cpp.o" "gcc" "src/cluster/CMakeFiles/lima_cluster.dir/Distance.cpp.o.d"
  "/root/repo/src/cluster/Hierarchical.cpp" "src/cluster/CMakeFiles/lima_cluster.dir/Hierarchical.cpp.o" "gcc" "src/cluster/CMakeFiles/lima_cluster.dir/Hierarchical.cpp.o.d"
  "/root/repo/src/cluster/KMeans.cpp" "src/cluster/CMakeFiles/lima_cluster.dir/KMeans.cpp.o" "gcc" "src/cluster/CMakeFiles/lima_cluster.dir/KMeans.cpp.o.d"
  "/root/repo/src/cluster/Silhouette.cpp" "src/cluster/CMakeFiles/lima_cluster.dir/Silhouette.cpp.o" "gcc" "src/cluster/CMakeFiles/lima_cluster.dir/Silhouette.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lima_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
