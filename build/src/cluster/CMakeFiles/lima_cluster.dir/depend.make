# Empty dependencies file for lima_cluster.
# This may be replaced when dependencies are built.
