file(REMOVE_RECURSE
  "liblima_cluster.a"
)
