file(REMOVE_RECURSE
  "CMakeFiles/lima_sim.dir/Network.cpp.o"
  "CMakeFiles/lima_sim.dir/Network.cpp.o.d"
  "CMakeFiles/lima_sim.dir/Simulation.cpp.o"
  "CMakeFiles/lima_sim.dir/Simulation.cpp.o.d"
  "liblima_sim.a"
  "liblima_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
