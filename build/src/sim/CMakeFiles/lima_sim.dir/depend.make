# Empty dependencies file for lima_sim.
# This may be replaced when dependencies are built.
