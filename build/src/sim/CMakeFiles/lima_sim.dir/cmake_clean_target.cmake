file(REMOVE_RECURSE
  "liblima_sim.a"
)
