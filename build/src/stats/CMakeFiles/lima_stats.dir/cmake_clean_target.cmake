file(REMOVE_RECURSE
  "liblima_stats.a"
)
