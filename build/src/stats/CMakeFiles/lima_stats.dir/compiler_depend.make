# Empty compiler generated dependencies file for lima_stats.
# This may be replaced when dependencies are built.
