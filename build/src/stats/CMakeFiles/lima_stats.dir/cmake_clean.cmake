file(REMOVE_RECURSE
  "CMakeFiles/lima_stats.dir/Bootstrap.cpp.o"
  "CMakeFiles/lima_stats.dir/Bootstrap.cpp.o.d"
  "CMakeFiles/lima_stats.dir/Descriptive.cpp.o"
  "CMakeFiles/lima_stats.dir/Descriptive.cpp.o.d"
  "CMakeFiles/lima_stats.dir/Dispersion.cpp.o"
  "CMakeFiles/lima_stats.dir/Dispersion.cpp.o.d"
  "CMakeFiles/lima_stats.dir/Majorization.cpp.o"
  "CMakeFiles/lima_stats.dir/Majorization.cpp.o.d"
  "CMakeFiles/lima_stats.dir/Standardize.cpp.o"
  "CMakeFiles/lima_stats.dir/Standardize.cpp.o.d"
  "liblima_stats.a"
  "liblima_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
