file(REMOVE_RECURSE
  "liblima_cfd.a"
)
