# Empty compiler generated dependencies file for lima_cfd.
# This may be replaced when dependencies are built.
