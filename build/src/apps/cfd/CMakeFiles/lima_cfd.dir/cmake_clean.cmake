file(REMOVE_RECURSE
  "CMakeFiles/lima_cfd.dir/Cfd.cpp.o"
  "CMakeFiles/lima_cfd.dir/Cfd.cpp.o.d"
  "liblima_cfd.a"
  "liblima_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
