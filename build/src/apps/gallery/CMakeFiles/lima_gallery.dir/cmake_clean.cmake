file(REMOVE_RECURSE
  "CMakeFiles/lima_gallery.dir/BspStencil.cpp.o"
  "CMakeFiles/lima_gallery.dir/BspStencil.cpp.o.d"
  "CMakeFiles/lima_gallery.dir/Decomposition.cpp.o"
  "CMakeFiles/lima_gallery.dir/Decomposition.cpp.o.d"
  "CMakeFiles/lima_gallery.dir/MasterWorker.cpp.o"
  "CMakeFiles/lima_gallery.dir/MasterWorker.cpp.o.d"
  "CMakeFiles/lima_gallery.dir/ParticleExchange.cpp.o"
  "CMakeFiles/lima_gallery.dir/ParticleExchange.cpp.o.d"
  "liblima_gallery.a"
  "liblima_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lima_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
