
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gallery/BspStencil.cpp" "src/apps/gallery/CMakeFiles/lima_gallery.dir/BspStencil.cpp.o" "gcc" "src/apps/gallery/CMakeFiles/lima_gallery.dir/BspStencil.cpp.o.d"
  "/root/repo/src/apps/gallery/Decomposition.cpp" "src/apps/gallery/CMakeFiles/lima_gallery.dir/Decomposition.cpp.o" "gcc" "src/apps/gallery/CMakeFiles/lima_gallery.dir/Decomposition.cpp.o.d"
  "/root/repo/src/apps/gallery/MasterWorker.cpp" "src/apps/gallery/CMakeFiles/lima_gallery.dir/MasterWorker.cpp.o" "gcc" "src/apps/gallery/CMakeFiles/lima_gallery.dir/MasterWorker.cpp.o.d"
  "/root/repo/src/apps/gallery/ParticleExchange.cpp" "src/apps/gallery/CMakeFiles/lima_gallery.dir/ParticleExchange.cpp.o" "gcc" "src/apps/gallery/CMakeFiles/lima_gallery.dir/ParticleExchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lima_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lima_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lima_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
