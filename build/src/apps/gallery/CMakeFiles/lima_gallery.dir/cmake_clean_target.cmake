file(REMOVE_RECURSE
  "liblima_gallery.a"
)
