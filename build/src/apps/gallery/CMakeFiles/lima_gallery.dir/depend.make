# Empty dependencies file for lima_gallery.
# This may be replaced when dependencies are built.
