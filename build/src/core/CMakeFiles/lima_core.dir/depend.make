# Empty dependencies file for lima_core.
# This may be replaced when dependencies are built.
