
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Compare.cpp" "src/core/CMakeFiles/lima_core.dir/Compare.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Compare.cpp.o.d"
  "/root/repo/src/core/CountingReduction.cpp" "src/core/CMakeFiles/lima_core.dir/CountingReduction.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/CountingReduction.cpp.o.d"
  "/root/repo/src/core/CubeIO.cpp" "src/core/CMakeFiles/lima_core.dir/CubeIO.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/CubeIO.cpp.o.d"
  "/root/repo/src/core/Diagnosis.cpp" "src/core/CMakeFiles/lima_core.dir/Diagnosis.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Diagnosis.cpp.o.d"
  "/root/repo/src/core/Efficiency.cpp" "src/core/CMakeFiles/lima_core.dir/Efficiency.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Efficiency.cpp.o.d"
  "/root/repo/src/core/HtmlReport.cpp" "src/core/CMakeFiles/lima_core.dir/HtmlReport.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/HtmlReport.cpp.o.d"
  "/root/repo/src/core/Measurement.cpp" "src/core/CMakeFiles/lima_core.dir/Measurement.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Measurement.cpp.o.d"
  "/root/repo/src/core/PaperDataset.cpp" "src/core/CMakeFiles/lima_core.dir/PaperDataset.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/PaperDataset.cpp.o.d"
  "/root/repo/src/core/PatternDiagram.cpp" "src/core/CMakeFiles/lima_core.dir/PatternDiagram.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/PatternDiagram.cpp.o.d"
  "/root/repo/src/core/PhaseAnalysis.cpp" "src/core/CMakeFiles/lima_core.dir/PhaseAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/PhaseAnalysis.cpp.o.d"
  "/root/repo/src/core/Pipeline.cpp" "src/core/CMakeFiles/lima_core.dir/Pipeline.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Pipeline.cpp.o.d"
  "/root/repo/src/core/ProcessorClustering.cpp" "src/core/CMakeFiles/lima_core.dir/ProcessorClustering.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/ProcessorClustering.cpp.o.d"
  "/root/repo/src/core/Profile.cpp" "src/core/CMakeFiles/lima_core.dir/Profile.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Profile.cpp.o.d"
  "/root/repo/src/core/Ranking.cpp" "src/core/CMakeFiles/lima_core.dir/Ranking.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Ranking.cpp.o.d"
  "/root/repo/src/core/Rebalance.cpp" "src/core/CMakeFiles/lima_core.dir/Rebalance.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Rebalance.cpp.o.d"
  "/root/repo/src/core/RegionClustering.cpp" "src/core/CMakeFiles/lima_core.dir/RegionClustering.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/RegionClustering.cpp.o.d"
  "/root/repo/src/core/Report.cpp" "src/core/CMakeFiles/lima_core.dir/Report.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Report.cpp.o.d"
  "/root/repo/src/core/TraceReduction.cpp" "src/core/CMakeFiles/lima_core.dir/TraceReduction.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/TraceReduction.cpp.o.d"
  "/root/repo/src/core/Views.cpp" "src/core/CMakeFiles/lima_core.dir/Views.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/Views.cpp.o.d"
  "/root/repo/src/core/WaitStates.cpp" "src/core/CMakeFiles/lima_core.dir/WaitStates.cpp.o" "gcc" "src/core/CMakeFiles/lima_core.dir/WaitStates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/lima_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/lima_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lima_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lima_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
