file(REMOVE_RECURSE
  "liblima_core.a"
)
