//===- bench/ablation_standardization.cpp - ID_P standardization ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md ablation 4: the processor view standardizes each
// processor's times over *its own* total within the region (Sec. 3.1),
// comparing behavioral *mixes*; the naive alternative compares raw
// per-processor totals.  The task farm separates the two cleanly: the
// master has a tiny total (the raw criterion ranks it harmless) but a
// wildly different mix (the paper's criterion flags it as the
// structural anomaly it is); the raw criterion points at whichever
// worker drew the longest tasks — noise, under self-scheduling.
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/MasterWorker.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "stats/Descriptive.h"
#include "stats/Standardize.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"
#include <cmath>

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("ablation_standardization: ");
  raw_ostream &OS = outs();
  OS << "=== Ablation: processor-view standardization scheme ===\n"
     << "task farm, 1 master + 8 workers, log-normal task sizes\n\n";

  gallery::MasterWorkerConfig Config;
  Config.Procs = 9;
  Config.Tasks = 200;
  Config.TaskSizeSigma = 1.0;
  auto Cube =
      ExitOnErr(reduceTrace(ExitOnErr(gallery::runMasterWorker(Config))));

  // Paper scheme: per-processor activity-mix deviation (Sec. 3.1).
  ProcessorView MixView = computeProcessorView(Cube);

  // Naive alternative: dispersion of raw per-processor totals — one
  // number per processor, its deviation from the mean total.
  std::vector<double> Totals(Cube.numProcs());
  for (unsigned P = 0; P != Cube.numProcs(); ++P)
    Totals[P] = Cube.procRegionTime(0, P);
  std::vector<double> Shares = stats::toShares(Totals);
  double MeanShare = stats::mean(Shares);

  TextTable Table({"proc", "total busy [s]", "mix-based ID_P (paper)",
                   "raw-total deviation"});
  for (unsigned P = 0; P != Cube.numProcs(); ++P) {
    std::string Label = std::to_string(P + 1);
    if (P == 0)
      Label += " (master)";
    Table.addRow({Label, formatFixed(Totals[P], 3),
                  formatFixed(MixView.Index[0][P], 4),
                  formatFixed(std::fabs(Shares[P] - MeanShare), 4)});
  }
  Table.print(OS);

  unsigned MixWinner =
      static_cast<unsigned>(stats::argMax(MixView.Index[0]));
  std::vector<double> RawDeviation(Cube.numProcs());
  for (unsigned P = 0; P != Cube.numProcs(); ++P)
    RawDeviation[P] = std::fabs(Shares[P] - MeanShare);
  unsigned RawWinner = static_cast<unsigned>(stats::argMax(RawDeviation));

  OS << "\nmost anomalous processor:\n"
     << "  paper's mix standardization -> processor " << MixWinner + 1
     << (MixWinner == 0 ? " (the master: structurally different role)"
                        : "")
     << '\n'
     << "  raw-total alternative       -> processor " << RawWinner + 1
     << (RawWinner == 0 ? "" : " (a worker that drew long tasks: noise)")
     << '\n';
  OS << "\nconclusion: standardizing per processor isolates *behavioral* "
        "deviation from sheer load, which is why Sec. 3.1 prescribes "
        "it; the raw alternative conflates the two.\n";
  OS.flush();
  return 0;
}
