//===- bench/BenchJson.h - Shared BENCH_*.json envelope ---------*- C++ -*-===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON envelope every BENCH_*.json emitter uses, so recorded
/// measurements are self-describing and comparable across machines and
/// revisions:
///
///   {
///     "bench": "parallel",
///     "schema_version": 1,
///     "version": "0.2.0 (git abc1234)",
///     "git_rev": "abc1234",
///     "hardware_threads": 8,
///     "timestamp": "2026-08-06T12:34:56Z",
///     ...bench-specific fields...,
///     "records": [ ...bench-specific array... ]
///   }
///
/// Bench-specific fields and the records array are supplied pre-rendered
/// (benches already format their own rows); the envelope adds the
/// metadata that used to be silently missing.  Established extra fields:
/// "telemetry" (perf_parallel: self-instrumentation overhead) and
/// "parse" (perf_parallel: strict vs lenient parse wall time per trace
/// format, with overhead_pct the lenient-mode rent).
///
//===----------------------------------------------------------------------===//

#ifndef LIMA_BENCH_BENCHJSON_H
#define LIMA_BENCH_BENCHJSON_H

#include "support/Parallel.h"
#include "support/Version.h"
#include <ctime>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lima {
namespace bench {

/// Extra top-level fields: name -> pre-rendered JSON value (callers
/// quote strings themselves; numbers and objects pass through as-is).
using JsonFields = std::vector<std::pair<std::string, std::string>>;

inline std::string jsonQuote(std::string_view Str) {
  std::string Out = "\"";
  for (char C : Str) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
  return Out;
}

/// Current UTC wall-clock time as "YYYY-MM-DDTHH:MM:SSZ".
inline std::string utcTimestamp() {
  std::time_t Now = std::time(nullptr);
  std::tm Utc{};
  gmtime_r(&Now, &Utc);
  char Buf[32];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%SZ", &Utc);
  return Buf;
}

/// Wraps \p RecordsArray (a rendered JSON array) in the shared envelope.
inline std::string makeEnvelope(std::string_view BenchName,
                                const JsonFields &Extra,
                                std::string_view RecordsArray) {
  std::string Out = "{\n";
  Out += "  \"bench\": " + jsonQuote(BenchName) + ",\n";
  Out += "  \"schema_version\": 1,\n";
  Out += "  \"version\": " + jsonQuote(versionString()) + ",\n";
  Out += "  \"git_rev\": " + jsonQuote(gitRevision()) + ",\n";
  Out += "  \"hardware_threads\": " +
         std::to_string(hardwareThreads()) + ",\n";
  Out += "  \"timestamp\": " + jsonQuote(utcTimestamp()) + ",\n";
  for (const auto &[Name, Value] : Extra)
    Out += "  " + jsonQuote(Name) + ": " + Value + ",\n";
  Out += "  \"records\": ";
  Out += RecordsArray;
  Out += "\n}\n";
  return Out;
}

} // namespace bench
} // namespace lima

#endif // LIMA_BENCH_BENCHJSON_H
