//===- bench/ablation_kmeans.cpp - k-means initialization ablation --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md ablation 3: k-means initialization (random points,
// k-means++, farthest-first) and the Hartigan refinement pass, measured
// on the paper's region-clustering task across many seeds — does every
// variant find the {loop1, loop2} / rest partition, and at what
// inertia?
//
//===----------------------------------------------------------------------===//

#include "cluster/KMeans.h"
#include "cluster/Silhouette.h"
#include "core/PaperDataset.h"
#include "core/RegionClustering.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;
using namespace lima::cluster;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Ablation: k-means initialization on the region-clustering "
        "task ===\n\n";

  MeasurementCube Cube = paper::buildCube();
  // Standardized features, as clusterRegions uses by default.
  std::vector<std::vector<double>> Points = regionFeatureMatrix(Cube, true);

  TextTable Table({"init", "hartigan", "paper partition found", "mean "
                   "inertia", "mean silhouette"});
  Table.setAlign(0, Align::Left);
  Table.setAlign(1, Align::Left);

  ExitOnError ExitOnErr("ablation_kmeans: ");
  const unsigned Seeds = 32;
  for (KMeansInit Init : {KMeansInit::RandomPoints, KMeansInit::PlusPlus,
                          KMeansInit::FarthestFirst}) {
    for (bool Hartigan : {false, true}) {
      unsigned Found = 0;
      double InertiaSum = 0.0, SilhouetteSum = 0.0;
      for (unsigned Seed = 1; Seed <= Seeds; ++Seed) {
        KMeansOptions Options;
        Options.K = 2;
        Options.Init = Init;
        Options.Seed = Seed;
        Options.Restarts = 1; // Expose init sensitivity.
        Options.HartiganRefinement = Hartigan;
        KMeansResult Result = ExitOnErr(kMeans(Points, Options));
        bool Paper = Result.Assignments[0] == Result.Assignments[1];
        for (size_t I = 2; I != Points.size(); ++I)
          Paper &= Result.Assignments[I] != Result.Assignments[0];
        Found += Paper;
        InertiaSum += Result.Inertia;
        SilhouetteSum += silhouetteScore(Points, Result.Assignments);
      }
      Table.addRow({std::string(kmeansInitName(Init)),
                    Hartigan ? "yes" : "no",
                    std::to_string(Found) + "/" + std::to_string(Seeds),
                    formatFixed(InertiaSum / Seeds, 3),
                    formatFixed(SilhouetteSum / Seeds, 3)});
    }
  }
  Table.print(OS);
  OS << "\n[paper partition: loops {1,2} vs {3..7}; with 8 restarts "
        "(the library default) every variant finds it]\n";
  OS.flush();
  return 0;
}
