//===- bench/fig1_patterns.cpp - regenerate the paper's Figure 1 ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 1: patterns of the times spent by the processors in
// computation, one row per loop, cells classified against the row range
// (max / min / upper & lower 15% bands).  Prints the ASCII rendering,
// writes the PPM image next to the binary, and checks the two counts
// the paper quotes.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/PatternDiagram.h"
#include "support/FileUtils.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Figure 1: computation patterns across processors ===\n\n";

  MeasurementCube Cube = paper::buildCube();
  PatternDiagram Diagram = computePatternDiagram(Cube, paper::Computation);
  OS << renderPatternASCII(Diagram, Cube) << '\n';

  if (Error E = writeFile("fig1_computation.ppm", renderPatternPPM(Diagram)))
    errs() << "warning: " << E.message() << '\n';
  else
    OS << "image written to fig1_computation.ppm\n";

  size_t Loop4Upper = Diagram.countInRow(3, PatternCategory::Maximum) +
                      Diagram.countInRow(3, PatternCategory::UpperBand);
  size_t Loop6Lower = Diagram.countInRow(5, PatternCategory::Minimum) +
                      Diagram.countInRow(5, PatternCategory::LowerBand);
  OS << "\npaper cross-checks:\n"
     << "  loop 4 processors in the upper 15% band: " << Loop4Upper
     << "  [paper: 5 of 16]\n"
     << "  loop 6 processors in the lower 15% band: " << Loop6Lower
     << "  [paper: 11 of 16]\n";
  OS.flush();
  return 0;
}
