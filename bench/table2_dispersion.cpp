//===- bench/table2_dispersion.cpp - regenerate the paper's Table 2 -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"
#include <cmath>

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Table 2: indices of dispersion ID_ij ===\n"
     << "measured [published]; Euclidean distance on standardized "
        "per-processor times\n\n";

  MeasurementCube Cube = paper::buildCube();
  auto Matrix = computeDissimilarityMatrix(Cube);
  const auto &T2 = paper::table2();

  TextTable Table({"loop", "computation", "point-to-point", "collective",
                   "synchronization"});
  Table.setAlign(0, Align::Left);
  double MaxError = 0.0;
  for (size_t I = 0; I != paper::NumLoops; ++I) {
    std::vector<std::string> Row;
    Row.push_back(std::to_string(I + 1));
    for (size_t J = 0; J != paper::NumActivities; ++J) {
      if (T2[I][J] <= 0.0 && Matrix[I][J] <= 0.0) {
        Row.push_back("-");
        continue;
      }
      MaxError = std::max(MaxError, std::fabs(Matrix[I][J] - T2[I][J]));
      Row.push_back(formatFixed(Matrix[I][J], 5) + " [" +
                    formatFixed(T2[I][J], 5) + "]");
    }
    Table.addRow(std::move(Row));
  }
  Table.print(OS);
  OS << "\nmax |measured - published| = " << formatGeneral(MaxError)
     << " (construction is exact up to floating point)\n";
  OS << "most imbalanced (loop, activity): loop 5 / synchronization = "
     << formatFixed(Matrix[4][paper::Synchronization], 5)
     << "  [paper: 0.30571]\n";
  OS.flush();
  return 0;
}
