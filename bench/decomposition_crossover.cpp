//===- bench/decomposition_crossover.cpp - 1-D vs 2-D crossover -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: the surface-to-volume trade-off between 1-D
// strips (2 messages of N cells) and 2-D blocks (4 messages of N/sqrt(P)
// cells).  Strips win when latency dominates (small grids); blocks win
// when bandwidth dominates (large grids, large P).  The study runs both
// layouts through the full simulator + methodology pipeline and reports
// the per-rank point-to-point time the analysis attributes — the
// crossover emerges from measured (simulated) behavior, not from the
// closed-form model.
//
//===----------------------------------------------------------------------===//

#include "apps/gallery/Decomposition.h"
#include "core/TraceReduction.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::gallery;

namespace {

double p2pTime(const DecompositionConfig &Config) {
  ExitOnError ExitOnErr("decomposition_crossover: ");
  auto Cube =
      ExitOnErr(core::reduceTrace(ExitOnErr(runDecomposition(Config))));
  return Cube.regionActivityTime(0, 1); // Mean p2p seconds per rank.
}

} // namespace

int main() {
  raw_ostream &OS = outs();
  OS << "=== Decomposition crossover: 1-D strips vs 2-D blocks ===\n"
     << "mean per-rank p2p seconds attributed by the analysis, P = 16\n\n";

  TextTable Table({"grid N", "1-D strips [ms]", "2-D blocks [ms]",
                   "winner"});
  Table.setAlign(3, Align::Left);
  for (unsigned GridN : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    DecompositionConfig Config;
    Config.Procs = 16;
    Config.GridN = GridN;
    Config.Steps = 6;
    Config.Layout = Decomposition::Strips1D;
    double Strips = p2pTime(Config);
    Config.Layout = Decomposition::Blocks2D;
    double Blocks = p2pTime(Config);
    Table.addRow({std::to_string(GridN), formatFixed(Strips * 1e3, 3),
                  formatFixed(Blocks * 1e3, 3),
                  Strips < Blocks ? "1d-strips" : "2d-blocks"});
  }
  Table.print(OS);

  OS << "\nmodel check: a strip rank receives 2 messages of N cells, a "
        "block rank up to 4 of N/4 cells.  Because the simulator's eager "
        "sends fly concurrently, per-message latencies overlap and the "
        "completion is governed by the largest single wire time (N vs "
        "N/4 cells) plus per-receive overheads (2 vs 4) — so blocks "
        "overtake strips as soon as the 3N/4-cell wire-time saving "
        "exceeds the two extra receive overheads, at a much smaller N "
        "than the naive serialized model (which would predict ~1000 "
        "cells) suggests.  The measured crossover lands between N = 64 "
        "and N = 128.\n";
  OS.flush();
  return 0;
}
