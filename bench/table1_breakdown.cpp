//===- bench/table1_breakdown.cpp - regenerate the paper's Table 1 --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Rebuilds the measurement cube and prints Table 1 (per-loop wall clock
// and activity breakdown) next to the published values, plus the
// coarse-grain conclusions the paper draws from it.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Profile.h"
#include "core/Report.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Table 1: wall clock time of the loops and breakdown "
        "(seconds) ===\n"
     << "paper values in brackets; reproduced from the reconstructed "
        "t[i][j][p] cube\n\n";

  MeasurementCube Cube = paper::buildCube();
  CoarseProfile Profile = computeCoarseProfile(Cube);
  const auto &T1 = paper::table1();

  TextTable Table({"loop", "overall", "computation", "point-to-point",
                   "collective", "synchronization"});
  Table.setAlign(0, Align::Left);
  const double Overall[7] = {19.051, 14.22, 10.90, 10.54, 9.041, 0.692,
                             0.31};
  for (size_t I = 0; I != paper::NumLoops; ++I) {
    std::vector<std::string> Row;
    Row.push_back(std::to_string(I + 1));
    Row.push_back(formatFixed(Profile.Regions[I].Time, 3) + " [" +
                  formatFixed(Overall[I], 3) + "]");
    for (size_t J = 0; J != paper::NumActivities; ++J) {
      double Measured = Profile.Regions[I].ByActivity[J];
      if (T1[I][J] <= 0.0 && Measured <= 0.0) {
        Row.push_back("-");
        continue;
      }
      Row.push_back(formatFixed(Measured, 3) + " [" +
                    formatFixed(T1[I][J], 3) + "]");
    }
    Table.addRow(std::move(Row));
  }
  Table.print(OS);

  OS << "\ncoarse-grain findings:\n";
  OS << "  heaviest loop: loop " << Profile.HeaviestRegion + 1 << " ("
     << formatPercent(Profile.Regions[Profile.HeaviestRegion]
                          .FractionOfProgram)
     << " of T = " << formatFixed(Profile.ProgramTime, 1)
     << "s)  [paper: loop 1, ~27%]\n";
  OS << "  dominant activity: "
     << Cube.activityName(Profile.DominantActivity)
     << "  [paper: computation]\n";
  OS << "  longest point-to-point: loop "
     << Profile.Extremes[paper::PointToPoint].WorstRegion + 1
     << "  [paper: loop 3]\n";
  OS << "  loops performing synchronization: "
     << Profile.Extremes[paper::Synchronization].RegionsPerforming
     << "  [paper: 3]\n";
  OS.flush();
  return 0;
}
