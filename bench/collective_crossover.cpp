//===- bench/collective_crossover.cpp - allreduce algorithm crossover -----===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: the collective wait time the methodology
// attributes to the "collective" activity depends on the collective's
// *implementation*.  This bench sweeps the allreduce message size at
// several machine sizes and prints which algorithm wins where: the
// latency-optimal recursive doubling for small messages, the
// bandwidth-optimal ring for large ones, with the crossover point
// moving with P.  It then re-runs the simulated CFD program under each
// algorithm to show the effect reaching the per-loop breakdown.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/TraceReduction.h"
#include "sim/Network.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::sim;

int main() {
  ExitOnError ExitOnErr("collective_crossover: ");
  raw_ostream &OS = outs();
  OS << "=== Allreduce algorithm crossover (alpha = 40us, beta = "
        "100 MB/s) ===\n\n";

  NetworkModel Net;
  Net.Latency = 40e-6;
  Net.BytesPerSecond = 100e6;

  const AllReduceAlgorithm Algorithms[] = {
      AllReduceAlgorithm::Tree, AllReduceAlgorithm::RecursiveDoubling,
      AllReduceAlgorithm::Ring};

  for (unsigned Procs : {8u, 64u}) {
    TextTable Table({"message bytes", "tree [us]", "recursive-doubling "
                     "[us]", "ring [us]", "winner"});
    Table.setAlign(4, Align::Left);
    uint64_t PreviousWinnerChangedAt = 0;
    AllReduceAlgorithm PreviousWinner = AllReduceAlgorithm::Tree;
    for (uint64_t Bytes : {64ull, 1024ull, 16384ull, 262144ull, 4194304ull,
                           67108864ull}) {
      double Best = 0.0;
      AllReduceAlgorithm Winner = AllReduceAlgorithm::Tree;
      std::vector<std::string> Row = {std::to_string(Bytes)};
      for (AllReduceAlgorithm Algorithm : Algorithms) {
        double Time = Net.allReduceTimeAs(Algorithm, Procs, Bytes);
        Row.push_back(formatFixed(Time * 1e6, 1));
        if (Algorithm == AllReduceAlgorithm::Tree || Time < Best) {
          Best = Time;
          Winner = Algorithm;
        }
      }
      Row.push_back(std::string(allReduceAlgorithmName(Winner)));
      Table.addRow(std::move(Row));
      if (Winner != PreviousWinner && PreviousWinnerChangedAt == 0)
        PreviousWinnerChangedAt = Bytes;
      PreviousWinner = Winner;
    }
    Table.setTitle("P = " + std::to_string(Procs));
    Table.print(OS);
    OS << '\n';
  }

  OS << "effect on the CFD program (P = 16, collective share of the "
        "pressure loop):\n";
  for (AllReduceAlgorithm Algorithm : Algorithms) {
    cfd::CfdConfig Config;
    Config.Iterations = 3;
    Config.Network.AllReduce = Algorithm;
    auto Cube =
        ExitOnErr(core::reduceTrace(ExitOnErr(cfd::runCfd(Config)).Trace));
    OS << "  " << leftJustify(allReduceAlgorithmName(Algorithm), 20)
       << " coll time " << formatFixed(Cube.regionActivityTime(0, 2), 3)
       << " s, program " << formatFixed(Cube.programTime(), 3) << " s\n";
  }
  OS << "\nnote: in the CFD program the collective time is dominated by "
        "*skew wait*, not by the algorithm's wire cost (8-byte "
        "reductions), so the per-loop breakdown barely moves — exactly "
        "the distinction between implementation cost and load-imbalance "
        "wait the methodology's activity attribution makes visible.\n";
  OS.flush();
  return 0;
}
