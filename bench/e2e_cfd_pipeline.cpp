//===- bench/e2e_cfd_pipeline.cpp - end-to-end shape reproduction ---------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The full substrate path: run the simulated message-passing CFD
// program on 16 processors, reduce its trace to the measurement cube,
// run the methodology, and compare the *shape* of the result against
// the paper's experiment — who is heaviest, what dominates, where
// point-to-point peaks, which loops synchronize, who the tuning
// candidate is.  Absolute seconds differ (our machine model is an
// analytic simulator, not the authors' SP2); the structure should not.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/PaperDataset.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/TraceReduction.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("e2e_cfd_pipeline: ");
  raw_ostream &OS = outs();
  OS << "=== End-to-end: simulated CFD -> trace -> cube -> analysis ===\n\n";

  cfd::CfdConfig Config; // Paper-shaped defaults: P=16.
  cfd::CfdResult Run = ExitOnErr(cfd::runCfd(Config));
  OS << "trace: " << Run.Trace.numEvents() << " events, final residual "
     << formatGeneral(Run.FinalResidual) << "\n\n";

  MeasurementCube Cube = ExitOnErr(reduceTrace(Run.Trace));
  AnalysisResult Result = ExitOnErr(analyze(Cube));

  makeRegionBreakdownTable(Cube, Result.Profile).print(OS);
  OS << '\n';
  makeRegionViewTable(Cube, Result.Regions).print(OS);

  // Shape comparison against the published experiment.
  auto Check = [&](const char *What, bool Ok, const std::string &Detail) {
    OS << "  [" << (Ok ? "ok" : "MISMATCH") << "] " << What << ": "
       << Detail << '\n';
  };
  OS << "\nshape cross-checks against the paper:\n";
  Check("heaviest region",
        Result.Profile.HeaviestRegion == 0,
        Cube.regionName(Result.Profile.HeaviestRegion) +
            " [paper: loop 1 / pressure]");
  Check("dominant activity",
        Result.Profile.DominantActivity == 0,
        std::string(Cube.activityName(Result.Profile.DominantActivity)) +
            " [paper: computation]");
  Check("longest p2p region",
        Result.Profile.Extremes[1].WorstRegion == 2,
        Cube.regionName(Result.Profile.Extremes[1].WorstRegion) +
            " [paper: loop 3 / implicit sweeps]");
  Check("synchronizing loops",
        Result.Profile.Extremes[3].RegionsPerforming == 3,
        std::to_string(Result.Profile.Extremes[3].RegionsPerforming) +
            " [paper: 3]");
  double CollCompRatio =
      Cube.regionActivityTime(0, 2) / Cube.regionActivityTime(0, 0);
  Check("pressure coll/comp ratio",
        CollCompRatio > 0.25 && CollCompRatio < 1.0,
        formatFixed(CollCompRatio, 3) + " [paper: 6.75/12.24 = 0.551]");
  double SweepRatio =
      Cube.regionActivityTime(2, 1) / Cube.regionActivityTime(2, 0);
  Check("implicit-sweeps p2p/comp ratio",
        SweepRatio > 0.5 && SweepRatio < 2.0,
        formatFixed(SweepRatio, 3) + " [paper: 5.68/5.22 = 1.088]");
  Check("scaled tuning candidate",
        !Result.RegionCandidates.empty() &&
            Result.RegionCandidates[0].Item == 0,
        (Result.RegionCandidates.empty()
             ? std::string("none")
             : Cube.regionName(Result.RegionCandidates[0].Item)) +
            " [paper: loop 1]");
  Check("sync imbalanced but negligible after scaling",
        Result.Activities.MostImbalanced == 3 &&
            Result.Activities.MostImbalancedScaled != 3,
        std::string(Cube.activityName(Result.Activities.MostImbalanced)) +
            " -> " +
            Cube.activityName(Result.Activities.MostImbalancedScaled) +
            " [paper: synchronization -> computation]");

  OS << '\n'
     << summarizeFindings(Cube, Result.Profile, Result.Activities,
                          Result.Regions, Result.Processors);
  OS.flush();
  return 0;
}
