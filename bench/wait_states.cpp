//===- bench/wait_states.cpp - root-causing point-to-point time -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: the paper's activity attribution says *where*
// point-to-point time goes; the late-sender analysis says *why*.  For
// the paper-shaped CFD run, each region's p2p time is split into
// late-sender wait (the sender had not issued the message when the
// receiver blocked — pure load imbalance) and the remainder (wire
// transfer + receive overhead).  The wavefront sweeps are almost pure
// late-sender (pipeline fill); the halo exchanges mix both.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/TraceReduction.h"
#include "core/WaitStates.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("wait_states: ");
  raw_ostream &OS = outs();
  OS << "=== Late-sender decomposition of point-to-point time ===\n\n";

  cfd::CfdConfig Config;
  Config.Iterations = 4;
  auto Run = ExitOnErr(cfd::runCfd(Config));
  MeasurementCube Cube = ExitOnErr(reduceTrace(Run.Trace));
  WaitStateReport Report = ExitOnErr(analyzeWaitStates(Run.Trace));

  TextTable Table({"region", "p2p total [s]", "late-sender [s]",
                   "late share"});
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    double P2P = Cube.regionActivityTime(I, 1) * Cube.numProcs();
    if (P2P <= 0.0)
      continue;
    double Late = 0.0;
    for (unsigned P = 0; P != Cube.numProcs(); ++P)
      Late += Report.LateSender.time(I, 0, P);
    Table.addRow({Cube.regionName(I), formatFixed(P2P, 3),
                  formatFixed(Late, 3),
                  formatPercent(Late / P2P, 0)});
  }
  Table.print(OS);

  OS << "\ntop late-sender channels:\n";
  unsigned Shown = 0;
  for (const ChannelWait &Channel : Report.Channels) {
    if (++Shown > 5)
      break;
    OS << "  p" << Channel.From + 1 << " -> p" << Channel.To + 1 << ": "
       << formatFixed(Channel.Seconds, 3) << " s over " << Channel.Messages
       << " messages\n";
  }
  OS << "\nreading guide: a high late share marks load imbalance "
        "(rebalance work); a low late share marks transfer cost "
        "(aggregate messages or improve the interconnect).  The two "
        "remedies are disjoint, which is why the split matters.\n";
  OS.flush();
  return 0;
}
