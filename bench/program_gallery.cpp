//===- bench/program_gallery.cpp - methodology across workloads -----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's future work: "we will analyze measurements collected on
// different parallel systems for a large variety of scientific
// programs."  This bench runs the methodology over the whole workload
// gallery — the CFD code, a self-scheduling task farm (fine and coarse
// grained), a BSP stencil (balanced and skewed) and a migrating-load
// particle code — and prints one summary row per program, showing how
// differently shaped inefficiencies surface in the same indices.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "apps/gallery/BspStencil.h"
#include "apps/gallery/MasterWorker.h"
#include "apps/gallery/ParticleExchange.h"
#include "core/Diagnosis.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

namespace {

struct Row {
  std::string Program;
  trace::Trace Trace;
};

void addRow(TextTable &Table, const std::string &Name,
            const trace::Trace &Trace) {
  ExitOnError ExitOnErr("program_gallery: ");
  MeasurementCube Cube = ExitOnErr(reduceTrace(Trace));
  AnalysisResult Result = ExitOnErr(analyze(Cube));
  auto Findings = diagnose(Cube, Result);

  double T = Cube.programTime();
  double Comp = 0.0, Comm = 0.0, Sync = 0.0;
  for (size_t J = 0; J != Cube.numActivities(); ++J) {
    std::string ActivityName(Cube.activityName(J));
    if (ActivityName == "computation")
      Comp += Cube.activityTime(J);
    else if (ActivityName == "synchronization")
      Sync += Cube.activityTime(J);
    else
      Comm += Cube.activityTime(J);
  }
  double WorstSID = Result.Regions.ScaledIndex[
      Result.Regions.MostImbalancedScaled];
  std::string TopFinding =
      Findings.empty() ? "-"
                       : std::string(diagnosisKindName(Findings[0].Kind));
  Table.addRow({Name, formatPercent(Comp / T), formatPercent(Comm / T),
                formatPercent(Sync / T),
                Cube.regionName(Result.Regions.MostImbalancedScaled),
                formatFixed(WorstSID, 4), TopFinding});
}

} // namespace

int main() {
  ExitOnError ExitOnErr("program_gallery: ");
  raw_ostream &OS = outs();
  OS << "=== Workload gallery: the methodology across program shapes ==="
     << "\n\n";

  TextTable Table({"program", "comp", "comm", "sync", "worst region",
                   "SID_C", "top diagnosis"});
  Table.setAlign(0, Align::Left);
  Table.setAlign(4, Align::Left);
  Table.setAlign(6, Align::Left);

  {
    cfd::CfdConfig Config;
    Config.Iterations = 4;
    addRow(Table, "cfd (paper-shaped)",
           ExitOnErr(cfd::runCfd(Config)).Trace);
  }
  {
    gallery::MasterWorkerConfig Config;
    Config.Tasks = 600;
    Config.TaskSizeSigma = 1.0;
    addRow(Table, "task farm (fine grain)",
           ExitOnErr(gallery::runMasterWorker(Config)));
  }
  {
    gallery::MasterWorkerConfig Config;
    Config.Tasks = 18; // Barely above the worker count.
    Config.TaskSizeSigma = 1.0;
    Config.MeanTaskSeconds = 0.6;
    addRow(Table, "task farm (coarse grain)",
           ExitOnErr(gallery::runMasterWorker(Config)));
  }
  {
    gallery::BspStencilConfig Config;
    Config.Skew = 0.0;
    addRow(Table, "BSP stencil (balanced)",
           ExitOnErr(gallery::runBspStencil(Config)));
  }
  {
    gallery::BspStencilConfig Config;
    Config.Skew = 0.6;
    addRow(Table, "BSP stencil (skewed)",
           ExitOnErr(gallery::runBspStencil(Config)));
  }
  {
    gallery::ParticleExchangeConfig Config;
    Config.Steps = 16;
    Config.MigrationFraction = 0.08;
    addRow(Table, "particles (migrating)",
           ExitOnErr(gallery::runParticleExchange(Config)));
  }

  Table.print(OS);
  OS << "\nreading guide: the skewed BSP code turns its imbalance into "
        "synchronization time; the coarse task farm re-creates the "
        "imbalance that fine-grained self-scheduling removes; the "
        "migrating particle code hides its drift in the aggregate view "
        "(see the phase_drift bench).\n";
  OS.flush();
  return 0;
}
