//===- bench/significance.cpp - bootstrap CIs for Table 2 -----------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment toward the paper's future work ("new criteria
// for the identification and localization of performance
// inefficiencies"): every ID_ij of Table 2 is a point estimate over
// just 16 processors.  Bootstrap resampling of the processors yields a
// 95% interval per cell, separating indices that are robustly nonzero
// from ones compatible with sampling noise — a statistical severity
// criterion to sit beside the paper's max/percentile/threshold rules.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "stats/Bootstrap.h"
#include "stats/Descriptive.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Bootstrap 95% intervals for the Table 2 indices ===\n"
     << "estimate [lower, upper] from 1000 processor resamples\n\n";

  MeasurementCube Cube = paper::buildCube();
  TextTable Table({"loop", "computation", "point-to-point", "collective",
                   "synchronization"});
  Table.setAlign(0, Align::Left);

  for (size_t I = 0; I != paper::NumLoops; ++I) {
    std::vector<std::string> Row = {std::to_string(I + 1)};
    for (size_t J = 0; J != paper::NumActivities; ++J) {
      std::vector<double> Times = Cube.processorSlice(I, J);
      if (stats::sum(Times) <= 0.0) {
        Row.push_back("-");
        continue;
      }
      stats::BootstrapOptions Options;
      Options.Seed = 1000 * I + J; // Deterministic per cell.
      auto Interval = stats::bootstrapImbalanceCI(Times, Options);
      Row.push_back(formatFixed(Interval.Estimate, 4) + " [" +
                    formatFixed(Interval.Lower, 4) + ", " +
                    formatFixed(Interval.Upper, 4) + "]");
    }
    Table.addRow(std::move(Row));
  }
  Table.print(OS);

  OS << "\nreading guide: wide intervals (e.g. the synchronization "
        "indices, computed over tiny absolute times concentrated on few "
        "processors) warn that the point estimate is fragile; narrow "
        "intervals (the big computation cells) say the measured "
        "imbalance is a stable property of the run.  Ranking by the "
        "*lower bound* instead of the estimate is a conservative "
        "severity criterion in the spirit the paper's future work asks "
        "for.\n";
  OS.flush();
  return 0;
}
