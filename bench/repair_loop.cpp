//===- bench/repair_loop.cpp - detect -> repair -> verify on loop 1 -------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: the full tuning cycle the paper's Section 2
// frames ("identification and localization of inefficiencies, their
// repair and the verification and validation of the achieved
// performance"), executed on the paper's own data.  The analysis names
// loop 1 the candidate; the rebalance planner proposes concrete work
// transfers (with majorization-guaranteed monotone predictions); the
// repaired cube is re-analyzed to verify loop 1 drops out of the
// candidate set.
//
//===----------------------------------------------------------------------===//

#include "core/Diagnosis.h"
#include "core/Efficiency.h"
#include "core/PaperDataset.h"
#include "core/Pipeline.h"
#include "core/Rebalance.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("repair_loop: ");
  raw_ostream &OS = outs();
  OS << "=== Detect -> repair -> verify on the paper's loop 1 ===\n\n";

  MeasurementCube Cube = paper::buildCube();
  AnalysisResult Before = ExitOnErr(analyze(Cube));
  OS << "detect: candidate = "
     << Cube.regionName(Before.Regions.MostImbalancedScaled)
     << " (ID_C = "
     << formatFixed(Before.Regions.Index[0], 5) << ", SID_C = "
     << formatFixed(Before.Regions.ScaledIndex[0], 5) << ")\n\n";

  OS << "repair: planned transfers for loop1/computation (each moves "
        "work from the most to the least loaded processor):\n";
  RebalanceOptions Options;
  Options.TargetIndex = 0.005;
  RebalancePlan CompPlan = planRebalance(Cube, 0, paper::Computation,
                                         Options);
  for (const Transfer &Move : CompPlan.Transfers)
    OS << "  move " << formatFixed(Move.Seconds, 3) << "s from p"
       << Move.From + 1 << " to p" << Move.To + 1
       << "  -> predicted ID = " << formatFixed(Move.PredictedIndex, 5)
       << '\n';
  OS << "  (" << CompPlan.Transfers.size() << " transfers, "
     << formatFixed(CompPlan.InitialIndex, 5) << " -> "
     << formatFixed(CompPlan.FinalIndex, 5) << ")\n\n";

  MeasurementCube Fixed = applyRebalance(Cube, CompPlan);
  RebalancePlan CollPlan = planRebalance(Fixed, 0, paper::Collective,
                                         Options);
  Fixed = applyRebalance(Fixed, CollPlan);
  OS << "  plus " << CollPlan.Transfers.size()
     << " transfers on loop1/collective ("
     << formatFixed(CollPlan.InitialIndex, 5) << " -> "
     << formatFixed(CollPlan.FinalIndex, 5) << ")\n\n";

  AnalysisResult After = ExitOnErr(analyze(Fixed));
  OS << "verify:\n";
  OS << "  loop1 SID_C: " << formatFixed(Before.Regions.ScaledIndex[0], 5)
     << " -> " << formatFixed(After.Regions.ScaledIndex[0], 5) << '\n';
  OS << "  new scaled candidate: "
     << Fixed.regionName(After.Regions.MostImbalancedScaled)
     << " (SID_C = "
     << formatFixed(
            After.Regions.ScaledIndex[After.Regions.MostImbalancedScaled],
            5)
     << ")\n";
  EfficiencyReport EffBefore = computeEfficiency(Cube);
  EfficiencyReport EffAfter = computeEfficiency(Fixed);
  OS << "  load balance: " << formatFixed(EffBefore.LoadBalance, 3)
     << " -> " << formatFixed(EffAfter.LoadBalance, 3) << '\n';
  OS << "  wasted processor-seconds: "
     << formatFixed(EffBefore.WastedProcessorSeconds, 1) << " -> "
     << formatFixed(EffAfter.WastedProcessorSeconds, 1) << '\n';
  OS << "\nremaining findings after the repair:\n"
     << renderDiagnoses(Fixed, diagnose(Fixed, After));
  OS.flush();
  return 0;
}
