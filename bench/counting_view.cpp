//===- bench/counting_view.cpp - counting-parameter extension -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: Section 2 of the paper names counting
// parameters (messages, bytes, ...) alongside timings but sets them
// aside "not to clutter the presentation".  This bench runs the same
// dissimilarity machinery over message counts and bytes of a CFD run
// and contrasts the result with the timing view: the wavefront region's
// *time* is balanced (everyone waits alike) while its *message counts*
// are not (edge ranks send half as much) — complementary evidence the
// timing view alone misses.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/CountingReduction.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"
#include "trace/TraceStats.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("counting_view: ");
  raw_ostream &OS = outs();
  OS << "=== Counting parameters: dissimilarity of message counts and "
        "bytes ===\n\n";

  cfd::CfdConfig Config;
  Config.Iterations = 4;
  auto Run = ExitOnErr(cfd::runCfd(Config));

  MeasurementCube TimeCube = ExitOnErr(reduceTrace(Run.Trace));
  auto TimeMatrix = computeDissimilarityMatrix(TimeCube);

  TextTable Table({"region", "ID(p2p time)", "ID(msgs sent)",
                   "ID(bytes sent)", "msgs/proc", "bytes/proc"});
  Table.setAlign(0, Align::Left);

  MeasurementCube Msgs = ExitOnErr(
      reduceTraceCounts(Run.Trace, CountingMetric::MessagesSent));
  MeasurementCube Bytes = ExitOnErr(
      reduceTraceCounts(Run.Trace, CountingMetric::BytesSent));
  auto MsgMatrix = computeDissimilarityMatrix(Msgs);
  auto ByteMatrix = computeDissimilarityMatrix(Bytes);

  for (size_t I = 0; I != TimeCube.numRegions(); ++I) {
    bool Communicates = Msgs.regionActivityTime(I, 0) > 0.0;
    Table.addRow({TimeCube.regionName(I),
                  TimeMatrix[I][1] > 0.0 ? formatFixed(TimeMatrix[I][1], 5)
                                         : "-",
                  Communicates ? formatFixed(MsgMatrix[I][0], 5) : "-",
                  Communicates ? formatFixed(ByteMatrix[I][0], 5) : "-",
                  Communicates
                      ? formatFixed(Msgs.regionActivityTime(I, 0), 1)
                      : "-",
                  Communicates
                      ? formatFixed(Bytes.regionActivityTime(I, 0), 0)
                      : "-"});
  }
  Table.print(OS);

  trace::TraceStats Stats = trace::computeTraceStats(Run.Trace);
  OS << "\ntrace totals: " << Stats.TotalMessages << " messages, "
     << Stats.TotalBytes << " bytes\n";
  OS << "\nreading guide: the *count* indices expose the decomposition's "
        "structure — every halo/pipeline region shows the identical "
        "edge-vs-interior asymmetry (edge ranks send in one direction "
        "only), independent of the injected work skew.  The *time* "
        "indices mix that structure with wait time, so they differ per "
        "region.  Comparing the two separates structural communication "
        "asymmetry from load-induced waiting — complementary evidence "
        "the paper's timing-only view cannot give.\n";
  OS.flush();
  return 0;
}
