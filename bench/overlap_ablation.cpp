//===- bench/overlap_ablation.cpp - overlap remedy evaluation -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: the diagnosis engine's standard remedy for
// communication-heavy regions is "overlap communication with
// computation".  This bench evaluates the remedy on the CFD program:
// the advection and smoothing halo exchanges are switched from blocking
// (compute -> send -> recv) to overlapped (send boundary -> post
// non-blocking receives -> compute -> wait), and the per-region
// point-to-point times and total program time are compared.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("overlap_ablation: ");
  raw_ostream &OS = outs();
  OS << "=== Ablation: blocking vs overlapped halo exchange ===\n\n";

  cfd::CfdConfig Blocking;
  Blocking.Iterations = 6;
  cfd::CfdConfig Overlapped = Blocking;
  Overlapped.OverlapHalo = true;

  auto BlockingCube =
      ExitOnErr(reduceTrace(ExitOnErr(cfd::runCfd(Blocking)).Trace));
  auto OverlappedCube =
      ExitOnErr(reduceTrace(ExitOnErr(cfd::runCfd(Overlapped)).Trace));

  TextTable Table({"region", "p2p blocking [s]", "p2p overlapped [s]",
                   "reduction"});
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != BlockingCube.numRegions(); ++I) {
    double Before = BlockingCube.regionActivityTime(I, 1);
    double After = OverlappedCube.regionActivityTime(I, 1);
    if (Before <= 0.0 && After <= 0.0)
      continue;
    std::string Reduction =
        Before > 0.0
            ? formatPercent(1.0 - After / Before, 0)
            : std::string("-");
    Table.addRow({BlockingCube.regionName(I), formatFixed(Before, 3),
                  formatFixed(After, 3), Reduction});
  }
  Table.print(OS);

  OS << "\nprogram time: " << formatFixed(BlockingCube.programTime(), 3)
     << " s blocking -> " << formatFixed(OverlappedCube.programTime(), 3)
     << " s overlapped ("
     << formatPercent(1.0 - OverlappedCube.programTime() /
                                BlockingCube.programTime(),
                      1)
     << " faster)\n";
  OS << "\nnote: only the advection and smoothing loops use the remedy; "
        "the pipelined implicit sweeps cannot (each chunk depends on the "
        "upstream neighbor), which is why their p2p time is unchanged — "
        "a dependency structure no overlap can hide, exactly the kind of "
        "distinction the per-region breakdown makes visible.\n";
  OS.flush();
  return 0;
}
