//===- bench/scaling_study.cpp - imbalance vs processor count -------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: how the methodology's indices behave as the
// machine grows.  The CFD program is run at P = 4..64 with the same
// per-rank grid (weak scaling); the injected relative imbalance pattern
// scales with P, collective costs grow logarithmically and the pipeline
// fill linearly, so the communication share and the dissimilarity
// indices drift with P — the kind of study the paper's future work
// ("measurements collected on different parallel systems") calls for.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Efficiency.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("scaling_study: ");
  raw_ostream &OS = outs();
  OS << "=== Weak-scaling study: the indices as the machine grows ===\n\n";

  TextTable Table({"P", "T [s]", "comp share", "coll share",
                   "ID_C(pressure)", "SID_C(pressure)", "load balance",
                   "candidate"});
  Table.setAlign(7, Align::Left);

  for (unsigned Procs : {4u, 8u, 16u, 32u, 64u}) {
    cfd::CfdConfig Config;
    Config.Procs = Procs;
    Config.Iterations = 3;
    auto Cube = ExitOnErr(reduceTrace(ExitOnErr(cfd::runCfd(Config)).Trace));
    auto Result = ExitOnErr(analyze(Cube));
    EfficiencyReport Efficiency = computeEfficiency(Cube);

    double T = Cube.programTime();
    std::string Candidate =
        Result.RegionCandidates.empty()
            ? "-"
            : Cube.regionName(Result.RegionCandidates[0].Item);
    Table.addRow({std::to_string(Procs), formatFixed(T, 3),
                  formatPercent(Cube.activityTime(0) / T, 0),
                  formatPercent(Cube.activityTime(2) / T, 0),
                  formatFixed(Result.Regions.Index[0], 4),
                  formatFixed(Result.Regions.ScaledIndex[0], 4),
                  formatFixed(Efficiency.LoadBalance, 3), Candidate});
  }
  Table.print(OS);
  OS << "\nreading guide: the Euclidean index of a fixed-shape ramp "
        "*dilutes* as P grows (each share deviation shrinks like 1/P "
        "while only sqrt(P) terms accumulate), so raw ID_C falls with P "
        "even though the relative skew is identical — comparisons across "
        "machine sizes should normalize by the index's theoretical "
        "maximum sqrt(1-1/P) (stats::maxImbalanceIndex).  Meanwhile the "
        "computation share falls as the pipeline fill grows with P, and "
        "the candidate region stays the pressure loop at every scale: "
        "the methodology's conclusion is scale-stable for this "
        "program.\n";
  OS.flush();
  return 0;
}
