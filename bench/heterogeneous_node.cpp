//===- bench/heterogeneous_node.cpp - slow-node localization --------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: a perfectly balanced program on a heterogeneous
// machine — one node runs at 60% speed (a real SP2-era failure mode:
// a degraded node, memory pressure, an OS daemon).  The program injects
// *no* imbalance, yet the methodology must localize the slow processor:
// the processor view flags it in every compute-heavy region, the
// diagnosis engine raises a processor-hotspot finding, and the
// efficiency metrics quantify the waste.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "core/Diagnosis.h"
#include "core/Efficiency.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  ExitOnError ExitOnErr("heterogeneous_node: ");
  raw_ostream &OS = outs();
  OS << "=== Slow-node localization: balanced program, degraded "
        "processor 6 (60% speed) ===\n\n";

  cfd::CfdConfig Config;
  Config.Iterations = 4;
  Config.ImbalanceScale = 0.0; // The *program* is perfectly balanced.
  Config.ComputeSpeed.assign(Config.Procs, 1.0);
  Config.ComputeSpeed[5] = 0.6; // Processor 6 (1-based) is degraded.

  auto Run = ExitOnErr(cfd::runCfd(Config));
  MeasurementCube Cube = ExitOnErr(reduceTrace(Run.Trace));
  AnalysisResult Result = ExitOnErr(analyze(Cube));

  OS << "processor view (who is the most imbalanced, per region):\n";
  unsigned Flagged = 0;
  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    unsigned Proc = Result.Processors.MostImbalancedProc[I];
    Flagged += Proc == 5;
    OS << "  " << leftJustify(Cube.regionName(I), 16) << " -> processor "
       << Proc + 1 << " (ID_P = "
       << formatFixed(Result.Processors.Index[I][Proc], 4) << ")\n";
  }
  OS << "\n  [expected: processor 6 flagged in the compute-heavy "
        "regions; flagged in "
     << Flagged << " of " << Cube.numRegions() << "]\n\n";

  EfficiencyReport Efficiency = computeEfficiency(Cube);
  OS << "efficiency metrics:\n";
  OS << "  load balance      = " << formatFixed(Efficiency.LoadBalance, 3)
     << "  [1.0 = perfect]\n";
  OS << "  wasted proc-secs  = "
     << formatFixed(Efficiency.WastedProcessorSeconds, 2) << '\n';
  OS << "  parallel eff.     = "
     << formatFixed(Efficiency.ParallelEfficiency, 3) << "\n\n";

  OS << "automatic diagnosis:\n"
     << renderDiagnoses(Cube, diagnose(Cube, Result));

  // Control: the same run on a healthy machine.
  Config.ComputeSpeed.clear();
  auto Healthy = ExitOnErr(cfd::runCfd(Config));
  MeasurementCube HealthyCube = ExitOnErr(reduceTrace(Healthy.Trace));
  EfficiencyReport HealthyEff = computeEfficiency(HealthyCube);
  OS << "\ncontrol (healthy machine): load balance = "
     << formatFixed(HealthyEff.LoadBalance, 3) << ", program time "
     << formatFixed(HealthyCube.programTime(), 3) << " s vs "
     << formatFixed(Cube.programTime(), 3) << " s degraded ("
     << formatFixed(Cube.programTime() / HealthyCube.programTime(), 2)
     << "x slowdown from one 0.6x node)\n";
  OS.flush();
  return 0;
}
