//===- bench/processor_view.cpp - regenerate the processor-view findings --===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4's processor-view analysis: per-loop ID_P indices, the most
// frequently imbalanced processor and the processor imbalanced for the
// longest time, compared against the paper's quoted findings.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Report.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Processor view: dissimilarity of processor behavior ===\n\n";

  MeasurementCube Cube = paper::buildCube();
  ProcessorView View = computeProcessorView(Cube);
  makeProcessorViewTable(Cube, View).print(OS);

  const auto &Findings = paper::processorFindings();
  OS << "\nfindings (processors numbered from 1):\n";
  OS << "  most frequently imbalanced: processor "
     << View.MostFrequentlyImbalanced + 1 << " ("
     << View.TimesMostImbalanced[View.MostFrequentlyImbalanced]
     << " loops)  [paper: processor "
     << Findings.MostFrequentlyImbalanced << ", loops 3 and 7]\n";
  OS << "  imbalanced for the longest time: processor "
     << View.LongestImbalanced + 1 << " ("
     << formatFixed(View.ImbalancedWallClock[View.LongestImbalanced], 2)
     << " s)  [paper: processor " << Findings.LongestImbalanced << "]\n";
  unsigned Proc2 = Findings.LongestImbalanced - 1;
  OS << "  processor 2 on loop 1: ID_P = "
     << formatFixed(View.Index[0][Proc2], 5) << " [paper: "
     << formatFixed(Findings.Proc2Loop1Index, 5) << "], wall clock = "
     << formatFixed(Cube.procRegionTime(0, Proc2), 2) << " s [paper: "
     << formatFixed(Findings.Proc2Loop1WallClock, 2) << " s]\n";
  OS.flush();
  return 0;
}
