//===- bench/table3_activity_view.cpp - regenerate the paper's Table 3 ----===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Table 3: activity view summary (ID_A, SID_A) ===\n"
     << "measured [published]; SID_A scales ID_A by T_j / T with "
        "T = 69.9s\n\n";

  MeasurementCube Cube = paper::buildCube();
  ActivityView View = computeActivityView(Cube);
  const auto &T3 = paper::table3();

  TextTable Table({"activity", "ID_A", "SID_A"});
  Table.setAlign(0, Align::Left);
  for (size_t J = 0; J != paper::NumActivities; ++J)
    Table.addRow({std::string(Cube.activityName(J)),
                  formatFixed(View.Index[J], 5) + " [" +
                      formatFixed(T3[J].ID_A, 5) + "]",
                  formatFixed(View.ScaledIndex[J], 5) + " [" +
                      formatFixed(T3[J].SID_A, 5) + "]"});
  Table.print(OS);

  OS << "\nconclusions:\n"
     << "  most imbalanced activity: "
     << Cube.activityName(View.MostImbalanced)
     << "  [paper: synchronization]\n"
     << "  after scaling, the tuning-relevant activity: "
     << Cube.activityName(View.MostImbalancedScaled)
     << "  [paper: computation; synchronization accounts for ~0.1% of T, "
        "so its imbalance is negligible]\n";
  OS.flush();
  return 0;
}
