//===- bench/ablation_ranking.cpp - ranking-criterion ablation ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md ablation 2: Section 3 lists three criteria for assessing
// severity — the maximum, percentiles of the distribution, and fixed
// thresholds.  This bench applies all three to the scaled region view
// of the paper cube and shows how the candidate set grows/shrinks.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Ranking.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

static void show(raw_ostream &OS, const MeasurementCube &Cube,
                 const char *Label, const std::vector<double> &Values,
                 const RankingOptions &Options) {
  auto Selected = rankIndices(Values, Options);
  OS << "  " << leftJustify(Label, 26) << " -> " << Selected.size()
     << " candidate(s):";
  for (const RankedItem &Item : Selected)
    OS << ' ' << Cube.regionName(Item.Item) << " ("
       << formatFixed(Item.Value, 5) << ')';
  OS << '\n';
}

int main() {
  raw_ostream &OS = outs();
  OS << "=== Ablation: ranking criterion on the scaled region view ===\n\n";

  MeasurementCube Cube = paper::buildCube();
  RegionView View = computeRegionView(Cube);

  RankingOptions Max;
  Max.Criterion = RankCriterion::Maximum;
  show(OS, Cube, "maximum", View.ScaledIndex, Max);

  for (double Q : {50.0, 75.0, 85.0, 95.0}) {
    RankingOptions Pct;
    Pct.Criterion = RankCriterion::Percentile;
    Pct.Percentile = Q;
    std::string Label = "percentile " + formatFixed(Q, 0);
    show(OS, Cube, Label.c_str(), View.ScaledIndex, Pct);
  }

  for (double Th : {0.0005, 0.002, 0.005, 0.01}) {
    RankingOptions Threshold;
    Threshold.Criterion = RankCriterion::Threshold;
    Threshold.Threshold = Th;
    std::string Label = "threshold " + formatGeneral(Th);
    show(OS, Cube, Label.c_str(), View.ScaledIndex, Threshold);
  }

  OS << "\nnote: every criterion keeps loop 1 at the top; percentile and "
        "threshold trade selectivity for recall, exactly the knob the "
        "paper leaves to the analyst.\n";
  OS.flush();
  return 0;
}
