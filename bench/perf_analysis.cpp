//===- bench/perf_analysis.cpp - analysis-path microbenchmarks ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the analysis path: dispersion
// indices, the three views, k-means, trace parsing and cube reduction,
// across problem sizes well beyond the paper's 7x4x16 cube.
//
//===----------------------------------------------------------------------===//

#include "cluster/KMeans.h"
#include "core/Measurement.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "stats/Dispersion.h"
#include "support/RNG.h"
#include "trace/BinaryIO.h"
#include "trace/TraceIO.h"
#include <benchmark/benchmark.h>

using namespace lima;

namespace {

/// Random cube of the given extents.
core::MeasurementCube makeCube(size_t Regions, size_t Activities,
                               unsigned Procs, uint64_t Seed) {
  std::vector<std::string> RegionNames, ActivityNames;
  for (size_t I = 0; I != Regions; ++I)
    RegionNames.push_back("region" + std::to_string(I));
  for (size_t J = 0; J != Activities; ++J)
    ActivityNames.push_back("activity" + std::to_string(J));
  core::MeasurementCube Cube(std::move(RegionNames),
                             std::move(ActivityNames), Procs);
  RNG Rng(Seed);
  for (size_t I = 0; I != Regions; ++I)
    for (size_t J = 0; J != Activities; ++J)
      for (unsigned P = 0; P != Procs; ++P)
        Cube.at(I, J, P) = Rng.uniformIn(0.0, 10.0);
  return Cube;
}

void BM_ImbalanceIndex(benchmark::State &State) {
  RNG Rng(1);
  std::vector<double> Times(static_cast<size_t>(State.range(0)));
  for (double &T : Times)
    T = Rng.uniformIn(0.0, 10.0);
  for (auto _ : State)
    benchmark::DoNotOptimize(stats::imbalanceIndex(Times));
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_ImbalanceIndex)->Arg(16)->Arg(256)->Arg(4096);

void BM_DissimilarityMatrix(benchmark::State &State) {
  core::MeasurementCube Cube =
      makeCube(static_cast<size_t>(State.range(0)), 4,
               static_cast<unsigned>(State.range(1)), 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(core::computeDissimilarityMatrix(Cube));
}
BENCHMARK(BM_DissimilarityMatrix)
    ->Args({7, 16})
    ->Args({64, 64})
    ->Args({256, 128});

void BM_ProcessorView(benchmark::State &State) {
  core::MeasurementCube Cube =
      makeCube(static_cast<size_t>(State.range(0)), 4,
               static_cast<unsigned>(State.range(1)), 3);
  for (auto _ : State)
    benchmark::DoNotOptimize(core::computeProcessorView(Cube));
}
BENCHMARK(BM_ProcessorView)->Args({7, 16})->Args({64, 64});

void BM_FullAnalysis(benchmark::State &State) {
  core::MeasurementCube Cube =
      makeCube(static_cast<size_t>(State.range(0)), 4, 16, 4);
  for (auto _ : State) {
    core::AnalysisResult Result = cantFail(core::analyze(Cube));
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_FullAnalysis)->Arg(7)->Arg(32)->Arg(128);

void BM_KMeans(benchmark::State &State) {
  RNG Rng(5);
  std::vector<std::vector<double>> Points;
  for (int I = 0; I != State.range(0); ++I)
    Points.push_back({Rng.normal(), Rng.normal(), Rng.normal(),
                      Rng.normal()});
  cluster::KMeansOptions Options;
  Options.K = 4;
  for (auto _ : State) {
    cluster::KMeansResult Result = cantFail(cluster::kMeans(Points, Options));
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_KMeans)->Arg(32)->Arg(256);

void BM_TraceParse(benchmark::State &State) {
  // Build a synthetic trace, serialize once, parse repeatedly.
  trace::Trace T(8);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  for (unsigned P = 0; P != 8; ++P) {
    double Clock = 0.0;
    T.append({Clock, P, trace::EventKind::RegionEnter, R, 0});
    for (int I = 0; I != State.range(0); ++I) {
      T.append({Clock, P, trace::EventKind::ActivityBegin, A, 0});
      Clock += 0.001;
      T.append({Clock, P, trace::EventKind::ActivityEnd, A, 0});
    }
    T.append({Clock, P, trace::EventKind::RegionExit, R, 0});
  }
  std::string Text = trace::writeTraceText(T);
  for (auto _ : State) {
    trace::Trace Parsed = cantFail(trace::parseTraceText(Text));
    benchmark::DoNotOptimize(Parsed);
  }
  State.SetBytesProcessed(State.iterations() * Text.size());
}
BENCHMARK(BM_TraceParse)->Arg(100)->Arg(1000);

void BM_TraceParseBinary(benchmark::State &State) {
  trace::Trace T(8);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  for (unsigned P = 0; P != 8; ++P) {
    double Clock = 0.0;
    T.append({Clock, P, trace::EventKind::RegionEnter, R, 0});
    for (int I = 0; I != State.range(0); ++I) {
      T.append({Clock, P, trace::EventKind::ActivityBegin, A, 0});
      Clock += 0.001;
      T.append({Clock, P, trace::EventKind::ActivityEnd, A, 0});
    }
    T.append({Clock, P, trace::EventKind::RegionExit, R, 0});
  }
  std::string Data = trace::writeTraceBinary(T);
  for (auto _ : State) {
    trace::Trace Parsed = cantFail(trace::parseTraceBinary(Data));
    benchmark::DoNotOptimize(Parsed);
  }
  State.SetBytesProcessed(State.iterations() * Data.size());
}
BENCHMARK(BM_TraceParseBinary)->Arg(100)->Arg(1000);

void BM_TraceReduce(benchmark::State &State) {
  trace::Trace T(16);
  uint32_t R = T.addRegion("r");
  uint32_t A = T.addActivity("a");
  for (unsigned P = 0; P != 16; ++P) {
    double Clock = 0.0;
    T.append({Clock, P, trace::EventKind::RegionEnter, R, 0});
    for (int I = 0; I != State.range(0); ++I) {
      T.append({Clock, P, trace::EventKind::ActivityBegin, A, 0});
      Clock += 0.001;
      T.append({Clock, P, trace::EventKind::ActivityEnd, A, 0});
    }
    T.append({Clock, P, trace::EventKind::RegionExit, R, 0});
  }
  for (auto _ : State) {
    core::MeasurementCube Cube = cantFail(core::reduceTrace(T));
    benchmark::DoNotOptimize(Cube);
  }
  State.SetItemsProcessed(State.iterations() * T.numEvents());
}
BENCHMARK(BM_TraceReduce)->Arg(100)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
