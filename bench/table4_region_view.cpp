//===- bench/table4_region_view.cpp - regenerate the paper's Table 4 ------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Table 4: code region view summary (ID_C, SID_C) ===\n"
     << "measured [published]; SID_C scales ID_C by t_i / T with "
        "T = 69.9s\n\n";

  MeasurementCube Cube = paper::buildCube();
  RegionView View = computeRegionView(Cube);
  const auto &T4 = paper::table4();

  TextTable Table({"loop", "ID_C", "SID_C"});
  Table.setAlign(0, Align::Left);
  for (size_t I = 0; I != paper::NumLoops; ++I)
    Table.addRow({std::to_string(I + 1),
                  formatFixed(View.Index[I], 5) + " [" +
                      formatFixed(T4[I].ID_C, 5) + "]",
                  formatFixed(View.ScaledIndex[I], 5) + " [" +
                      formatFixed(T4[I].SID_C, 5) + "]"});
  Table.print(OS);

  OS << "\nconclusions:\n"
     << "  most imbalanced loop: loop " << View.MostImbalanced + 1
     << " (ID_C = " << formatFixed(View.Index[View.MostImbalanced], 5)
     << ")  [paper: loop 6, 0.13734]\n"
     << "  best tuning candidate: loop " << View.MostImbalancedScaled + 1
     << " (SID_C = "
     << formatFixed(View.ScaledIndex[View.MostImbalancedScaled], 5)
     << ")  [paper: loop 1 — the program core, large on both indices]\n";
  OS.flush();
  return 0;
}
