//===- bench/cluster_regions.cpp - regenerate the k-means grouping --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 4's clustering step: each loop described by its per-activity
// wall clock vector, partitioned with k-means (k = 2).  The paper finds
// the heaviest loops 1 and 2 in one group and the rest in the other.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/RegionClustering.h"
#include "core/Report.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== k-means clustering of the loops (k = 2) ===\n"
     << "each loop described by (computation, p2p, collective, sync) "
        "wall clock times\n\n";

  MeasurementCube Cube = paper::buildCube();
  ExitOnError ExitOnErr("cluster_regions: ");
  RegionClusters Clusters = ExitOnErr(clusterRegions(Cube));

  OS << describeClusters(Cube, Clusters);
  OS << "inertia = " << formatFixed(Clusters.Inertia, 3) << '\n';
  OS << "\n[paper: \"The heaviest loops of the program, that is, loops 1 "
        "and 2, belong to one group, whereas the remaining loops belong "
        "to the second group.\"]\n";

  bool HeavyTogether = Clusters.Assignments[0] == Clusters.Assignments[1];
  bool RestSeparate = true;
  for (size_t I = 2; I != Cube.numRegions(); ++I)
    RestSeparate &= Clusters.Assignments[I] != Clusters.Assignments[0];
  OS << "reproduced: " << (HeavyTogether && RestSeparate ? "yes" : "NO")
     << '\n';
  OS.flush();
  return 0;
}
