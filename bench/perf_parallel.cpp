//===- bench/perf_parallel.cpp - serial vs parallel analysis paths --------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Times the hot analysis paths serial (threads=1) against the thread
// pool on a synthetic ~1M-event trace over 64 simulated processors, and
// emits machine-readable JSON to seed the perf trajectory:
//
//   perf_parallel [--threads 8] [--procs 64] [--rounds 2000]
//                 [--out BENCH_parallel.json]
//
// The JSON uses the shared bench envelope (BenchJson.h): version, git
// revision, hardware-thread count and timestamp wrap a records array of
// [{"name": ..., "threads": N, "events": E, "wall_ms": W,
//   "speedup": S}, ...] where speedup is wall_serial / wall at the same
// workload (1.0 for serial entries), plus a "telemetry" object with the
// runtime-enabled overhead of the self-instrumentation layer, a
// "metrics" object with the enabled-vs-disabled cost of the metrics
// registry (pipeline wall time plus per-count nanoseconds), and a
// "parse" object comparing strict against lenient trace parsing (the
// input-hardening rent, text and binary), a "binary_ingest" object
// comparing the v1 sequential binary reader against the v2
// block-indexed reader at one thread and at the hardware thread count
// (events/s, MB/s, and the on-disk index overhead, which must stay
// under 2% of the file), a "streaming_write" object comparing the
// buffered serialize-then-save path against the crash-consistent
// streaming writer (wall time, events/s, and the writer's peak
// buffered bytes, which must stay a small fraction of the file — the
// O(one block) memory claim), and an "http" object costing
// the status server's /metrics exposition (render wall time over ~200
// labeled series plus loopback scrape latency under writer load).
// Every parallel result is checked bit-identical to its serial twin
// before a line is emitted.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "cluster/KMeans.h"
#include "core/Dashboard.h"
#include "core/Pipeline.h"
#include "core/TraceReduction.h"
#include "core/WindowHistory.h"
#include "stats/Bootstrap.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/HttpServer.h"
#include "support/Metrics.h"
#include "support/MetricsExport.h"
#include "support/Parallel.h"
#include "support/RNG.h"
#include "support/ParseLimits.h"
#include "support/Telemetry.h"
#include "support/raw_ostream.h"
#include "trace/BinaryIO.h"
#include "trace/ParallelBinary.h"
#include "trace/ParallelParse.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lima;

namespace {

/// One emitted measurement.
struct BenchRecord {
  std::string Name;
  unsigned Threads;
  size_t Events;
  double WallMs;
  double Speedup;
};

/// Synthetic trace: \p Rounds nested-region rounds per processor, eight
/// events per round, with per-processor skew and matched ring traffic.
trace::Trace makeTrace(unsigned Procs, unsigned Rounds) {
  trace::Trace T(Procs);
  uint32_t Outer = T.addRegion("solve");
  uint32_t Inner = T.addRegion("exchange");
  uint32_t Comp = T.addActivity("computation");
  uint32_t P2P = T.addActivity("point-to-point");

  double MaxClock = 0.0;
  for (unsigned P = 0; P != Procs; ++P) {
    double Clock = 0.0001 * P;
    for (unsigned R = 0; R != Rounds; ++R) {
      double Work = 0.001 + 0.0001 * ((P * 13 + R) % 29);
      T.append({Clock, P, trace::EventKind::RegionEnter, Outer, 0});
      T.append({Clock, P, trace::EventKind::ActivityBegin, Comp, 0});
      Clock += Work;
      T.append({Clock, P, trace::EventKind::ActivityEnd, Comp, 0});
      T.append({Clock, P, trace::EventKind::RegionEnter, Inner, 0});
      T.append({Clock, P, trace::EventKind::ActivityBegin, P2P, 0});
      Clock += Work * 0.25;
      T.append({Clock, P, trace::EventKind::ActivityEnd, P2P, 0});
      T.append({Clock, P, trace::EventKind::RegionExit, Inner, 0});
      T.append({Clock, P, trace::EventKind::RegionExit, Outer, 0});
    }
    MaxClock = std::max(MaxClock, Clock);
  }
  for (unsigned P = 0; P != Procs; ++P)
    T.append({MaxClock + 1.0, P, trace::EventKind::MessageSend,
              (P + 1) % Procs, 4096});
  for (unsigned P = 0; P != Procs; ++P)
    T.append({MaxClock + 2.0, P, trace::EventKind::MessageRecv,
              (P + Procs - 1) % Procs, 4096});
  return T;
}

/// Milliseconds of the best of \p Reps runs of \p Fn.
template <typename Fn> double timeMs(unsigned Reps, Fn &&Body) {
  double Best = 0.0;
  for (unsigned R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Body();
    auto End = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    if (R == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

std::string toJSON(const std::vector<BenchRecord> &Records) {
  std::string Out = "[\n";
  for (size_t I = 0; I != Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    Out += "  {\"name\": \"" + R.Name +
           "\", \"threads\": " + std::to_string(R.Threads) +
           ", \"events\": " + std::to_string(R.Events) +
           ", \"wall_ms\": " + formatFixed(R.WallMs, 3) +
           ", \"speedup\": " + formatFixed(R.Speedup, 3) + "}";
    Out += I + 1 == Records.size() ? "\n" : ",\n";
  }
  Out += "]";
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  ExitOnError ExitOnErr("perf_parallel: ");
  ArgParser Parser("perf_parallel",
                   "times serial vs thread-pool analysis paths on a "
                   "synthetic 1M-event trace and writes "
                   "BENCH_parallel.json");
  Parser.addOption("threads", "parallel thread count to benchmark", "8");
  Parser.addOption("procs", "simulated processors", "64");
  Parser.addOption("rounds", "instrumented rounds per processor", "2000");
  Parser.addOption("reps", "timing repetitions (best-of)", "3");
  Parser.addOption("out", "JSON output path", "BENCH_parallel.json");
  ExitOnErr(Parser.parse(Argc, Argv));

  unsigned Threads = static_cast<unsigned>(Parser.getUnsigned("threads"));
  unsigned Procs = static_cast<unsigned>(Parser.getUnsigned("procs"));
  unsigned Rounds = static_cast<unsigned>(Parser.getUnsigned("rounds"));
  unsigned Reps = static_cast<unsigned>(Parser.getUnsigned("reps"));

  raw_ostream &OS = outs();
  trace::Trace T = makeTrace(Procs, Rounds);
  size_t Events = T.numEvents();
  OS << "synthetic trace: " << Procs << " procs, " << Events
     << " events; hardware threads: " << hardwareThreads() << "\n\n";

  std::vector<BenchRecord> Records;
  auto record = [&](const std::string &Name, size_t N, double SerialMs,
                    double ParallelMs) {
    Records.push_back({Name, 1, N, SerialMs, 1.0});
    Records.push_back({Name, Threads, N, ParallelMs,
                       ParallelMs > 0.0 ? SerialMs / ParallelMs : 0.0});
    OS << leftJustify(Name, 12) << " serial " << formatFixed(SerialMs, 2)
       << " ms, " << Threads << " threads " << formatFixed(ParallelMs, 2)
       << " ms, speedup " << formatFixed(SerialMs / ParallelMs, 2) << "x\n";
  };

  // --- Trace reduction -------------------------------------------------
  core::ReductionOptions Serial;
  Serial.Threads = 1;
  core::ReductionOptions Parallel;
  Parallel.Threads = Threads;
  core::MeasurementCube SerialCube = ExitOnErr(core::reduceTrace(T, Serial));
  core::MeasurementCube ParallelCube =
      ExitOnErr(core::reduceTrace(T, Parallel));
  for (size_t I = 0; I != SerialCube.numRegions(); ++I)
    for (size_t J = 0; J != SerialCube.numActivities(); ++J)
      for (unsigned P = 0; P != SerialCube.numProcs(); ++P)
        if (SerialCube.time(I, J, P) != ParallelCube.time(I, J, P))
          ExitOnErr(makeStringError("parallel reduction diverged at "
                                    "(%zu, %zu, %u)",
                                    I, J, P));
  record("reduce", Events,
         timeMs(Reps, [&] { (void)cantFail(core::reduceTrace(T, Serial)); }),
         timeMs(Reps,
                [&] { (void)cantFail(core::reduceTrace(T, Parallel)); }));

  // --- Trace statistics ------------------------------------------------
  trace::TraceStats SerialStats = trace::computeTraceStats(T, 1);
  trace::TraceStats ParallelStats = trace::computeTraceStats(T, Threads);
  if (SerialStats.BusyTime != ParallelStats.BusyTime ||
      SerialStats.TotalBytes != ParallelStats.TotalBytes)
    ExitOnErr(makeStringError("parallel trace stats diverged"));
  record("stats", Events,
         timeMs(Reps, [&] { (void)trace::computeTraceStats(T, 1); }),
         timeMs(Reps, [&] { (void)trace::computeTraceStats(T, Threads); }));

  // --- Bootstrap -------------------------------------------------------
  RNG Rng(3);
  std::vector<double> Sample;
  for (int I = 0; I != 4096; ++I)
    Sample.push_back(Rng.uniformIn(0.5, 2.0));
  stats::BootstrapOptions BootSerial;
  BootSerial.Resamples = 4000;
  BootSerial.Threads = 1;
  stats::BootstrapOptions BootParallel = BootSerial;
  BootParallel.Threads = Threads;
  stats::BootstrapInterval SerialCI =
      stats::bootstrapImbalanceCI(Sample, BootSerial);
  stats::BootstrapInterval ParallelCI =
      stats::bootstrapImbalanceCI(Sample, BootParallel);
  if (SerialCI.Lower != ParallelCI.Lower ||
      SerialCI.Upper != ParallelCI.Upper)
    ExitOnErr(makeStringError("parallel bootstrap diverged"));
  record("bootstrap", Sample.size() * BootSerial.Resamples,
         timeMs(Reps,
                [&] { (void)stats::bootstrapImbalanceCI(Sample, BootSerial); }),
         timeMs(Reps, [&] {
           (void)stats::bootstrapImbalanceCI(Sample, BootParallel);
         }));

  // --- k-means ---------------------------------------------------------
  RNG PointRng(5);
  std::vector<std::vector<double>> Points;
  for (int I = 0; I != 10000; ++I) {
    double Center = static_cast<double>(I % 6) * 8.0;
    std::vector<double> Point(8);
    for (double &D : Point)
      D = Center + PointRng.normal();
    Points.push_back(std::move(Point));
  }
  cluster::KMeansOptions KSerial;
  KSerial.K = 6;
  KSerial.Restarts = 2;
  KSerial.Threads = 1;
  cluster::KMeansOptions KParallel = KSerial;
  KParallel.Threads = Threads;
  cluster::KMeansResult SerialKM = cantFail(cluster::kMeans(Points, KSerial));
  cluster::KMeansResult ParallelKM =
      cantFail(cluster::kMeans(Points, KParallel));
  if (SerialKM.Assignments != ParallelKM.Assignments ||
      SerialKM.Inertia != ParallelKM.Inertia)
    ExitOnErr(makeStringError("parallel k-means diverged"));
  record("kmeans", Points.size(),
         timeMs(Reps, [&] { (void)cantFail(cluster::kMeans(Points, KSerial)); }),
         timeMs(Reps,
                [&] { (void)cantFail(cluster::kMeans(Points, KParallel)); }));

  // --- Full pipeline ---------------------------------------------------
  core::AnalysisOptions ASerial;
  ASerial.Threads = 1;
  core::AnalysisOptions AParallel;
  AParallel.Threads = Threads;
  core::AnalysisResult SerialAn = cantFail(core::analyze(SerialCube, ASerial));
  core::AnalysisResult ParallelAn =
      cantFail(core::analyze(SerialCube, AParallel));
  if (SerialAn.Regions.ScaledIndex != ParallelAn.Regions.ScaledIndex)
    ExitOnErr(makeStringError("parallel analysis diverged"));
  record("analyze", Events,
         timeMs(Reps, [&] { (void)cantFail(core::analyze(SerialCube, ASerial)); }),
         timeMs(Reps, [&] {
           (void)cantFail(core::analyze(SerialCube, AParallel));
         }));

  // --- Telemetry overhead ----------------------------------------------
  // The analysis paths above all ran with recording disabled (the
  // shipping default); re-time the full pipeline with recording enabled
  // to put a number on the instrumentation cost.  With telemetry
  // compiled out both modes are identical by construction.
  // Interleave the two modes (best-of per mode) so drift on a shared
  // machine hits both sides instead of biasing whichever ran second.
  auto pipelineOnce = [&] {
    (void)cantFail(core::reduceTrace(T, Parallel));
    (void)cantFail(core::analyze(SerialCube, AParallel));
  };
  double TelemetryOffMs = 0.0, TelemetryOnMs = 0.0;
  telemetry::reset();
  for (unsigned R = 0; R != Reps; ++R) {
    double OffMs = timeMs(1, pipelineOnce);
    telemetry::setEnabled(true);
    double OnMs = timeMs(1, pipelineOnce);
    telemetry::setEnabled(false);
    if (R == 0 || OffMs < TelemetryOffMs)
      TelemetryOffMs = OffMs;
    if (R == 0 || OnMs < TelemetryOnMs)
      TelemetryOnMs = OnMs;
  }
  size_t TelemetryEvents = telemetry::collect().Events.size();
  double OverheadPct = TelemetryOffMs > 0.0
                           ? (TelemetryOnMs - TelemetryOffMs) /
                                 TelemetryOffMs * 100.0
                           : 0.0;
  OS << "\ntelemetry: off " << formatFixed(TelemetryOffMs, 2) << " ms, on "
     << formatFixed(TelemetryOnMs, 2) << " ms (" << TelemetryEvents
     << " events, " << formatFixed(OverheadPct, 1) << "% overhead)\n";

  // --- Metrics overhead ------------------------------------------------
  // Same interleaved protocol for the metrics registry: the pipeline is
  // instrumented with LIMA_METRIC_COUNT/GAUGE sites that check one
  // relaxed atomic when disabled and touch a sharded counter when
  // enabled.  Target: under 2% enabled, unmeasurable disabled.
  metrics::resetAll();
  double MetricsOffMs = 0.0, MetricsOnMs = 0.0;
  for (unsigned R = 0; R != Reps; ++R) {
    double OffMs = timeMs(1, pipelineOnce);
    metrics::setEnabled(true);
    double OnMs = timeMs(1, pipelineOnce);
    metrics::setEnabled(false);
    if (R == 0 || OffMs < MetricsOffMs)
      MetricsOffMs = OffMs;
    if (R == 0 || OnMs < MetricsOnMs)
      MetricsOnMs = OnMs;
  }
  double MetricsOverheadPct =
      MetricsOffMs > 0.0
          ? (MetricsOnMs - MetricsOffMs) / MetricsOffMs * 100.0
          : 0.0;

  // Microbenchmark the per-site cost in both states.
  constexpr uint64_t MicroIters = 2000000;
  auto microNs = [&] {
    double Ms = timeMs(Reps, [&] {
      for (uint64_t I = 0; I != MicroIters; ++I)
        LIMA_METRIC_COUNT("bench.metrics.micro", 1);
    });
    return Ms * 1e6 / static_cast<double>(MicroIters);
  };
  double CountNsDisabled = microNs();
  metrics::setEnabled(true);
  double CountNsEnabled = microNs();
  metrics::setEnabled(false);
  metrics::resetAll();
  OS << "metrics:   off " << formatFixed(MetricsOffMs, 2) << " ms, on "
     << formatFixed(MetricsOnMs, 2) << " ms ("
     << formatFixed(MetricsOverheadPct, 1) << "% overhead); per count "
     << formatFixed(CountNsDisabled, 1) << " ns disabled, "
     << formatFixed(CountNsEnabled, 1) << " ns enabled\n";

  // --- Status-server exposition ----------------------------------------
  // The /metrics handler runs on the status server's single thread, so
  // render time is time the server cannot accept other requests.  Cost
  // it against a realistically wide registry (~200 labeled series) and
  // measure end-to-end loopback scrape latency while a writer thread
  // keeps the counters hot.  Target: render under 10 ms.
  constexpr unsigned HttpSeries = 200;
  for (unsigned I = 0; I != HttpSeries; ++I) {
    std::string Name =
        "bench.http.series{idx=\"" + std::to_string(I) + "\"}";
    if (I % 2 == 0)
      metrics::counter(Name).add(I);
    else
      metrics::gauge(Name).set(static_cast<double>(I));
  }
  double RenderMs = timeMs(Reps, [] { (void)metrics::writePrometheusText(); });
  constexpr double RenderTargetMs = 10.0;
  bool RenderOk = RenderMs <= RenderTargetMs;

  http::HttpServer Scraped;
  Scraped.handle("/metrics", [](const http::Request &) {
    http::Response R;
    R.ContentType = "text/plain; version=0.0.4; charset=utf-8";
    R.Body = metrics::writePrometheusText();
    return R;
  });
  ExitOnErr(Scraped.start("127.0.0.1:0"));
  std::atomic<bool> WriterStop{false};
  std::thread Writer([&] {
    metrics::Counter &Hot = metrics::counter("bench.http.hot");
    while (!WriterStop.load(std::memory_order_relaxed))
      Hot.add(1);
  });
  constexpr unsigned ScrapeRequests = 50;
  std::vector<double> ScrapeMs;
  ScrapeMs.reserve(ScrapeRequests);
  for (unsigned I = 0; I != ScrapeRequests; ++I) {
    auto Begin = std::chrono::steady_clock::now();
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      break;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Scraped.port());
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    bool Ok = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)) == 0;
    const char Req[] = "GET /metrics HTTP/1.1\r\nHost: bench\r\n"
                       "Connection: close\r\n\r\n";
    Ok = Ok && ::send(Fd, Req, sizeof(Req) - 1, 0) ==
                   static_cast<ssize_t>(sizeof(Req) - 1);
    char Buf[4096];
    while (Ok) {
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N < 0)
        Ok = false;
      if (N <= 0)
        break;
    }
    ::close(Fd);
    if (Ok)
      ScrapeMs.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - Begin)
                             .count());
  }
  WriterStop.store(true, std::memory_order_relaxed);
  Writer.join();
  Scraped.stop();
  metrics::resetAll();
  std::sort(ScrapeMs.begin(), ScrapeMs.end());
  auto percentile = [&](double P) {
    if (ScrapeMs.empty())
      return 0.0;
    size_t Idx = static_cast<size_t>(P * (ScrapeMs.size() - 1));
    return ScrapeMs[Idx];
  };
  double ScrapeP50Ms = percentile(0.50);
  double ScrapeP99Ms = percentile(0.99);
  OS << "http:      render " << formatFixed(RenderMs, 2) << " ms over "
     << HttpSeries << " series (target <= " << formatFixed(RenderTargetMs, 1)
     << " ms: " << (RenderOk ? "PASS" : "FAIL") << "); scrape p50 "
     << formatFixed(ScrapeP50Ms, 2) << " ms, p99 "
     << formatFixed(ScrapeP99Ms, 2) << " ms over " << ScrapeMs.size()
     << " requests under writer load\n";

  // --- Live stream fan-out and history render --------------------------
  // The SSE hub pushes every published frame to every subscriber from
  // the server's poll loop, so fan-out throughput bounds how fast
  // windows can drain before live dashboards lag.  The history render
  // is the /api/windows JSON for a full 512-window ring; like
  // /metrics, it runs on the server thread and its wall time is time
  // the server answers nothing else.
  constexpr unsigned SseSubscribers = 8;
  constexpr unsigned SseFrames = 1000;
  auto Hub = std::make_shared<http::StreamHub>();
  http::HttpServer SseServer;
  SseServer.handle("/events", [&Hub](const http::Request &) {
    return http::Response::stream("text/event-stream", Hub);
  });
  ExitOnErr(SseServer.start("127.0.0.1:0"));
  std::vector<std::thread> Readers;
  std::vector<double> ReaderMs(SseSubscribers, 0.0);
  std::atomic<unsigned> ReadersDone{0};
  auto SseBegin = std::chrono::steady_clock::now();
  for (unsigned S = 0; S != SseSubscribers; ++S)
    Readers.emplace_back([&, S] {
      int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (Fd < 0)
        return;
      sockaddr_in Addr{};
      Addr.sin_family = AF_INET;
      Addr.sin_port = htons(SseServer.port());
      Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof(Addr)) == 0) {
        const char Req[] = "GET /events HTTP/1.1\r\nHost: bench\r\n\r\n";
        if (::send(Fd, Req, sizeof(Req) - 1, 0) ==
            static_cast<ssize_t>(sizeof(Req) - 1)) {
          // Accumulate the chunked stream until the publisher's final
          // sentinel frame arrives, then stamp this reader's wall
          // clock.
          std::string Got;
          char Buf[8192];
          ssize_t N;
          while (Got.find("event: done") == std::string::npos &&
                 (N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
            Got.append(Buf, static_cast<size_t>(N));
          ReaderMs[S] = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - SseBegin)
                            .count();
        }
      }
      ::close(Fd);
      ReadersDone.fetch_add(1, std::memory_order_relaxed);
    });
  // Publish once every subscriber is attached, so each frame fans out
  // SseSubscribers ways.
  while (Hub->subscribers() != SseSubscribers &&
         ReadersDone.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  const std::string FramePayload(180, 'w');
  for (unsigned F = 0; F != SseFrames; ++F)
    Hub->publish("event: window\ndata: {\"id\":" + std::to_string(F) +
                 ",\"pad\":\"" + FramePayload + "\"}\n\n");
  Hub->publish("event: done\ndata: {}\n\n");
  for (std::thread &R : Readers)
    R.join();
  SseServer.stop();
  double SseWallMs = *std::max_element(ReaderMs.begin(), ReaderMs.end());
  double SseFanoutPerS =
      SseWallMs > 0.0 ? double(SseFrames) * SseSubscribers / SseWallMs * 1e3
                      : 0.0;

  constexpr size_t HistoryWindows = 512;
  core::WindowHistory History(HistoryWindows);
  {
    std::vector<std::string> RegionNames, ActivityNames;
    for (unsigned I = 0; I != 12; ++I)
      RegionNames.push_back("region" + std::to_string(I));
    for (unsigned J = 0; J != 4; ++J)
      ActivityNames.push_back("activity" + std::to_string(J));
    History.setNames(std::move(RegionNames), std::move(ActivityNames));
  }
  for (size_t W = 0; W != HistoryWindows; ++W) {
    core::WindowSummary S;
    S.Index = W;
    S.StartTime = double(W);
    S.EndTime = double(W + 1);
    S.Events = 1000 + W;
    S.ProcLoad.assign(8, 0.125 * double(W % 7));
    S.RegionIdC.assign(12, 0.3);
    S.RegionSidC.assign(12, 0.05 * double(W % 11));
    S.ActivityIdA.assign(4, 0.2);
    S.ActivitySidA.assign(4, 0.1);
    S.MaxSidC = 0.05 * double(W % 11);
    History.append(std::move(S));
  }
  double HistoryRenderMs =
      timeMs(Reps, [&] { (void)core::dash::windowsJson(History); });
  OS << "dashboard: SSE fan-out " << formatFixed(SseFanoutPerS / 1e3, 1)
     << "k frames/s to " << SseSubscribers << " subscribers ("
     << SseFrames << " frames in " << formatFixed(SseWallMs, 2)
     << " ms); /api/windows render " << formatFixed(HistoryRenderMs, 2)
     << " ms over " << HistoryWindows << " windows\n";

  // --- Parse overhead: strict vs lenient -------------------------------
  // Lenient parsing pays per-record bookkeeping (the drop check and the
  // report counters) even on clean inputs; keep that rent visible for
  // both trace formats.  Target: under 2% on the ~1M-event trace.
  std::string TraceText = trace::writeTraceText(T);
  std::string TraceBinary = trace::writeTraceBinary(T);
  ParseOptions StrictParse;
  ParseReport LenientReport;
  ParseOptions LenientParse;
  LenientParse.Mode = ParseMode::Lenient;
  LenientParse.Report = &LenientReport;
  double TextLenientPct = 0.0;
  auto parseOverhead = [&](const char *Name, auto &&Parse,
                           double *PctOut = nullptr) {
    double StrictMs =
        timeMs(Reps, [&] { (void)cantFail(Parse(StrictParse)); });
    double LenientMs =
        timeMs(Reps, [&] { (void)cantFail(Parse(LenientParse)); });
    double Pct = StrictMs > 0.0 ? (LenientMs - StrictMs) / StrictMs * 100.0
                                : 0.0;
    if (PctOut)
      *PctOut = Pct;
    OS << "parse " << leftJustify(Name, 6) << " strict "
       << formatFixed(StrictMs, 2) << " ms, lenient "
       << formatFixed(LenientMs, 2) << " ms ("
       << formatFixed(Pct, 1) << "% overhead)\n";
    return "{\"strict_wall_ms\": " + formatFixed(StrictMs, 3) +
           ", \"lenient_wall_ms\": " + formatFixed(LenientMs, 3) +
           ", \"overhead_pct\": " + formatFixed(Pct, 2) + "}";
  };
  OS << '\n';
  std::string TextParseJson = parseOverhead(
      "text",
      [&](const ParseOptions &O) {
        return trace::parseTraceText(TraceText, O);
      },
      &TextLenientPct);
  std::string BinaryParseJson =
      parseOverhead("binary", [&](const ParseOptions &O) {
        return trace::parseTraceBinary(TraceBinary, O);
      });
  // The lenient rent on clean input must stay under 2%; the fast path
  // made strict parsing much cheaper, so the per-record bookkeeping has
  // to be cheap in *relative* terms too.
  constexpr double LenientTargetPct = 2.0;
  bool LenientTargetOk = TextLenientPct <= LenientTargetPct;
  OS << "parse text lenient overhead target <= "
     << formatFixed(LenientTargetPct, 1) << "%: "
     << (LenientTargetOk ? "PASS" : "FAIL") << '\n';

  // --- Ingestion fast path ---------------------------------------------
  // Old parser vs the single-pass scanner vs the sharded parallel
  // parser, as events/s and MB/s over the same in-memory bytes (the
  // file-level mmap savings come on top of these).
  unsigned HwThreads = hardwareThreads();
  double IngestBytes = static_cast<double>(TraceText.size());
  auto ingestLeg = [&](const char *Name, double WallMs, double BaseMs) {
    double EventsPerS = WallMs > 0.0 ? Events / (WallMs / 1e3) : 0.0;
    double MbPerS = WallMs > 0.0 ? IngestBytes / 1e6 / (WallMs / 1e3) : 0.0;
    double Speedup = WallMs > 0.0 ? BaseMs / WallMs : 0.0;
    OS << "ingest " << leftJustify(Name, 12) << formatFixed(WallMs, 2)
       << " ms, " << formatFixed(EventsPerS / 1e6, 2) << " Mevents/s, "
       << formatFixed(MbPerS, 1) << " MB/s, " << formatFixed(Speedup, 2)
       << "x vs legacy\n";
    return "{\"wall_ms\": " + formatFixed(WallMs, 3) +
           ", \"events_per_s\": " + formatFixed(EventsPerS, 0) +
           ", \"mb_per_s\": " + formatFixed(MbPerS, 2) +
           ", \"speedup_vs_legacy\": " + formatFixed(Speedup, 3) + "}";
  };
  OS << '\n';
  double LegacyMs = timeMs(
      Reps, [&] { (void)cantFail(trace::parseTraceTextLegacy(TraceText,
                                                             StrictParse)); });
  double ScannerMs = timeMs(
      Reps,
      [&] { (void)cantFail(trace::parseTraceText(TraceText, StrictParse)); });
  double Par1Ms = timeMs(Reps, [&] {
    (void)cantFail(trace::parseTraceTextParallel(TraceText, StrictParse, 1));
  });
  double ParHwMs = timeMs(Reps, [&] {
    (void)cantFail(
        trace::parseTraceTextParallel(TraceText, StrictParse, HwThreads));
  });
  std::string LegacyJson = ingestLeg("legacy", LegacyMs, LegacyMs);
  std::string ScannerJson = ingestLeg("scanner", ScannerMs, LegacyMs);
  std::string Par1Json = ingestLeg("sharded@1", Par1Ms, LegacyMs);
  std::string ParHwJson =
      ingestLeg(("sharded@" + std::to_string(HwThreads)).c_str(), ParHwMs,
                LegacyMs);
  std::string IngestJson =
      "{\"events\": " + std::to_string(Events) +
      ", \"bytes\": " + std::to_string(TraceText.size()) +
      ", \"hardware_threads\": " + std::to_string(HwThreads) +
      ", \"legacy\": " + LegacyJson + ", \"scanner\": " + ScannerJson +
      ", \"sharded_1\": " + Par1Json + ", \"sharded_hw\": " + ParHwJson +
      ", \"lenient_overhead_pct\": " + formatFixed(TextLenientPct, 2) +
      ", \"lenient_overhead_target_pct\": " +
      formatFixed(LenientTargetPct, 1) +
      ", \"lenient_overhead_ok\": " +
      (LenientTargetOk ? "true" : "false") + "}";

  // --- Binary ingestion ------------------------------------------------
  // v1 sequential reader vs the v2 block-indexed reader at one thread
  // and at the hardware thread count, over the same logical trace.  The
  // v2 numbers include index validation and the SoA block decode.  The
  // block index must stay cheap on disk: overhead vs v1 under 2%.
  std::string BinaryV1 = trace::writeTraceBinaryV1(T);
  auto binaryLeg = [&](const char *Name, const std::string &Bytes,
                       double WallMs, double BaseMs) {
    double EventsPerS = WallMs > 0.0 ? Events / (WallMs / 1e3) : 0.0;
    double MbPerS =
        WallMs > 0.0 ? Bytes.size() / 1e6 / (WallMs / 1e3) : 0.0;
    double Speedup = WallMs > 0.0 ? BaseMs / WallMs : 0.0;
    OS << "binary " << leftJustify(Name, 12) << formatFixed(WallMs, 2)
       << " ms, " << formatFixed(EventsPerS / 1e6, 2) << " Mevents/s, "
       << formatFixed(MbPerS, 1) << " MB/s, " << formatFixed(Speedup, 2)
       << "x vs v1\n";
    return "{\"wall_ms\": " + formatFixed(WallMs, 3) +
           ", \"events_per_s\": " + formatFixed(EventsPerS, 0) +
           ", \"mb_per_s\": " + formatFixed(MbPerS, 2) +
           ", \"speedup_vs_v1\": " + formatFixed(Speedup, 3) + "}";
  };
  OS << '\n';
  double BinV1Ms = timeMs(Reps, [&] {
    (void)cantFail(trace::parseTraceBinary(BinaryV1, StrictParse));
  });
  double BinV2SeqMs = timeMs(Reps, [&] {
    (void)cantFail(
        trace::parseTraceBinaryParallel(TraceBinary, StrictParse, 1));
  });
  double BinV2ParMs = timeMs(Reps, [&] {
    (void)cantFail(trace::parseTraceBinaryParallel(TraceBinary, StrictParse,
                                                   HwThreads));
  });
  std::string BinV1Json = binaryLeg("v1", BinaryV1, BinV1Ms, BinV1Ms);
  std::string BinV2SeqJson =
      binaryLeg("v2@1", TraceBinary, BinV2SeqMs, BinV1Ms);
  std::string BinV2ParJson =
      binaryLeg(("v2@" + std::to_string(HwThreads)).c_str(), TraceBinary,
                BinV2ParMs, BinV1Ms);
  double IndexOverheadPct =
      TraceBinary.size() > BinaryV1.size()
          ? 100.0 * static_cast<double>(TraceBinary.size() - BinaryV1.size()) /
                static_cast<double>(TraceBinary.size())
          : 0.0;
  constexpr double IndexOverheadTargetPct = 2.0;
  bool IndexOverheadOk = IndexOverheadPct <= IndexOverheadTargetPct;
  OS << "binary index overhead " << formatFixed(IndexOverheadPct, 2)
     << "% of file (target <= " << formatFixed(IndexOverheadTargetPct, 1)
     << "%: " << (IndexOverheadOk ? "PASS" : "FAIL") << ")\n";
  std::string BinaryIngestJson =
      "{\"events\": " + std::to_string(Events) +
      ", \"v1_bytes\": " + std::to_string(BinaryV1.size()) +
      ", \"v2_bytes\": " + std::to_string(TraceBinary.size()) +
      ", \"hardware_threads\": " + std::to_string(HwThreads) +
      ", \"v1\": " + BinV1Json + ", \"v2_seq\": " + BinV2SeqJson +
      ", \"v2_sharded\": " + BinV2ParJson +
      ", \"index_overhead_pct\": " + formatFixed(IndexOverheadPct, 2) +
      ", \"index_overhead_target_pct\": " +
      formatFixed(IndexOverheadTargetPct, 1) +
      ", \"index_overhead_ok\": " + (IndexOverheadOk ? "true" : "false") +
      "}";

  // --- Streaming write -------------------------------------------------
  // The crash-consistent streaming writer against the buffered
  // serialize-then-save path, same trace, same destination file.  The
  // streamed file costs one pwrite per block plus a header patch; in
  // exchange its memory stays bounded by one open block, where the
  // buffered path materializes the whole serialized file.  The memory
  // target is structural, not relative to the trace: peak buffered
  // bytes must stay under one block's worst-case encoding (24 bytes per
  // event — f64 time, kind byte, max varint id and bytes), whatever the
  // trace size.
  std::string StreamPath = Parser.getString("out") + ".stream.limb";
  double BufferedWriteMs =
      timeMs(Reps, [&] { ExitOnErr(trace::saveTraceBinary(T, StreamPath)); });
  double StreamedWriteMs = timeMs(Reps, [&] {
    ExitOnErr(trace::StreamingBinaryWriter::writeTrace(T, StreamPath));
  });
  size_t StreamBytes = 0;
  size_t PeakBuffered = 0;
  {
    trace::StreamingBinaryWriter W;
    ExitOnErr(W.open(StreamPath, T.regionNames(), T.activityNames(),
                     static_cast<uint32_t>(T.numProcs())));
    for (unsigned P = 0; P != T.numProcs(); ++P)
      for (const trace::Event &E : T.events(P)) {
        ExitOnErr(W.append(E));
        PeakBuffered = std::max(PeakBuffered, W.bufferedBytes());
      }
    ExitOnErr(W.close());
    StreamBytes = cantFail(readFile(StreamPath)).size();
  }
  std::remove(StreamPath.c_str());
  auto writeLeg = [&](const char *Name, double WallMs, double BaseMs) {
    double EventsPerS = WallMs > 0.0 ? Events / (WallMs / 1e3) : 0.0;
    double MbPerS =
        WallMs > 0.0 ? StreamBytes / 1e6 / (WallMs / 1e3) : 0.0;
    double Relative = BaseMs > 0.0 ? WallMs / BaseMs : 0.0;
    OS << "write " << leftJustify(Name, 10) << formatFixed(WallMs, 2)
       << " ms, " << formatFixed(EventsPerS / 1e6, 2) << " Mevents/s, "
       << formatFixed(MbPerS, 1) << " MB/s, " << formatFixed(Relative, 2)
       << "x buffered wall\n";
    return "{\"wall_ms\": " + formatFixed(WallMs, 3) +
           ", \"events_per_s\": " + formatFixed(EventsPerS, 0) +
           ", \"mb_per_s\": " + formatFixed(MbPerS, 2) +
           ", \"vs_buffered\": " + formatFixed(Relative, 3) + "}";
  };
  OS << '\n';
  std::string BufferedWriteJson =
      writeLeg("buffered", BufferedWriteMs, BufferedWriteMs);
  std::string StreamedWriteJson =
      writeLeg("streamed", StreamedWriteMs, BufferedWriteMs);
  constexpr size_t MaxEventEncodedBytes = 24;
  size_t BlockBoundBytes =
      trace::BinaryWriteOptions{}.BlockEvents * MaxEventEncodedBytes;
  bool PeakBufferedOk = PeakBuffered <= BlockBoundBytes;
  OS << "write peak buffered " << PeakBuffered
     << " bytes (one-block bound " << BlockBoundBytes
     << ": " << (PeakBufferedOk ? "PASS" : "FAIL") << ")\n";
  std::string StreamingWriteJson =
      "{\"events\": " + std::to_string(Events) +
      ", \"bytes\": " + std::to_string(StreamBytes) +
      ", \"buffered\": " + BufferedWriteJson +
      ", \"streamed\": " + StreamedWriteJson +
      ", \"peak_buffered_bytes\": " + std::to_string(PeakBuffered) +
      ", \"block_bound_bytes\": " + std::to_string(BlockBoundBytes) +
      ", \"peak_buffered_ok\": " + (PeakBufferedOk ? "true" : "false") +
      "}";

  bench::JsonFields Extra = {
      {"parse", "{\"events\": " + std::to_string(Events) +
                    ", \"text\": " + TextParseJson +
                    ", \"binary\": " + BinaryParseJson + "}"},
      {"ingest", IngestJson},
      {"binary_ingest", BinaryIngestJson},
      {"streaming_write", StreamingWriteJson},
      {"telemetry",
       std::string("{\"compiled\": ") +
           (LIMA_TELEMETRY ? "true" : "false") +
           ", \"disabled_wall_ms\": " + formatFixed(TelemetryOffMs, 3) +
           ", \"enabled_wall_ms\": " + formatFixed(TelemetryOnMs, 3) +
           ", \"events\": " + std::to_string(TelemetryEvents) +
           ", \"overhead_pct\": " + formatFixed(OverheadPct, 2) + "}"},
      {"metrics",
       std::string("{\"compiled\": ") +
           (LIMA_TELEMETRY ? "true" : "false") +
           ", \"disabled_wall_ms\": " + formatFixed(MetricsOffMs, 3) +
           ", \"enabled_wall_ms\": " + formatFixed(MetricsOnMs, 3) +
           ", \"overhead_pct\": " + formatFixed(MetricsOverheadPct, 2) +
           ", \"count_ns_disabled\": " + formatFixed(CountNsDisabled, 2) +
           ", \"count_ns_enabled\": " + formatFixed(CountNsEnabled, 2) +
           "}"},
      {"http",
       "{\"series\": " + std::to_string(HttpSeries) +
           ", \"render_wall_ms\": " + formatFixed(RenderMs, 3) +
           ", \"render_target_ms\": " + formatFixed(RenderTargetMs, 1) +
           ", \"render_ok\": " + (RenderOk ? "true" : "false") +
           ", \"scrape_requests\": " + std::to_string(ScrapeMs.size()) +
           ", \"scrape_p50_ms\": " + formatFixed(ScrapeP50Ms, 3) +
           ", \"scrape_p99_ms\": " + formatFixed(ScrapeP99Ms, 3) +
           ", \"sse_subscribers\": " + std::to_string(SseSubscribers) +
           ", \"sse_frames\": " + std::to_string(SseFrames) +
           ", \"sse_wall_ms\": " + formatFixed(SseWallMs, 3) +
           ", \"sse_fanout_frames_per_s\": " + formatFixed(SseFanoutPerS, 1) +
           ", \"history_windows\": " + std::to_string(HistoryWindows) +
           ", \"history_render_wall_ms\": " + formatFixed(HistoryRenderMs, 3) +
           "}"}};

  std::string Path = Parser.getString("out");
  ExitOnErr(writeFile(
      Path, bench::makeEnvelope("parallel", Extra, toJSON(Records))));
  OS << "\nJSON written to " << Path << '\n';
  OS.flush();
  return 0;
}
