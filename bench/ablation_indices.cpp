//===- bench/ablation_indices.cpp - index-of-dispersion ablation ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md ablation 1: the paper argues the Euclidean distance is the
// best-suited index of dispersion.  This bench recomputes the region
// view under every implemented index family and compares the rankings
// they induce — showing which conclusions are robust to the choice
// (most-imbalanced loop, tuning candidate) and how the absolute scales
// differ.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/Views.h"
#include "stats/Dispersion.h"
#include "support/Format.h"
#include "support/TableFormatter.h"
#include "support/raw_ostream.h"
#include <algorithm>
#include <numeric>

using namespace lima;
using namespace lima::core;

/// Rank vector (1 = largest) of \p Values.
static std::vector<size_t> ranksOf(const std::vector<double> &Values) {
  std::vector<size_t> Order(Values.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Values[A] > Values[B];
  });
  std::vector<size_t> Ranks(Values.size());
  for (size_t R = 0; R != Order.size(); ++R)
    Ranks[Order[R]] = R + 1;
  return Ranks;
}

int main() {
  raw_ostream &OS = outs();
  OS << "=== Ablation: index-of-dispersion family (region view) ===\n"
     << "ID_C per loop under each index; rank in parentheses\n\n";

  MeasurementCube Cube = paper::buildCube();

  std::vector<std::string> Header = {"loop"};
  for (stats::DispersionKind Kind : stats::AllDispersionKinds)
    Header.push_back(std::string(stats::dispersionKindName(Kind)));
  TextTable Table(Header);
  Table.setAlign(0, Align::Left);

  std::vector<RegionView> Views;
  for (stats::DispersionKind Kind : stats::AllDispersionKinds) {
    ViewOptions Options;
    Options.Kind = Kind;
    Views.push_back(computeRegionView(Cube, Options));
  }
  std::vector<std::vector<size_t>> Ranks;
  for (const RegionView &View : Views)
    Ranks.push_back(ranksOf(View.Index));

  for (size_t I = 0; I != Cube.numRegions(); ++I) {
    std::vector<std::string> Row = {std::to_string(I + 1)};
    for (size_t K = 0; K != Views.size(); ++K)
      Row.push_back(formatFixed(Views[K].Index[I], 4) + " (" +
                    std::to_string(Ranks[K][I]) + ")");
    Table.addRow(std::move(Row));
  }
  Table.print(OS);

  OS << "\nrobustness of the conclusions:\n";
  size_t Idx = 0;
  for (stats::DispersionKind Kind : stats::AllDispersionKinds) {
    OS << "  " << leftJustify(stats::dispersionKindName(Kind), 10)
       << " most imbalanced: loop " << Views[Idx].MostImbalanced + 1
       << ", scaled candidate: loop "
       << Views[Idx].MostImbalancedScaled + 1 << '\n';
    ++Idx;
  }
  OS << "[paper, euclidean: loop 6 most imbalanced; loop 1 the "
        "candidate]\n";
  OS.flush();
  return 0;
}
