//===- bench/perf_simulator.cpp - simulator microbenchmarks ---------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark measurements of the discrete-event engine: simulated
// operation throughput for point-to-point chains, collectives across
// rank counts, and the CFD application end to end.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "sim/Simulation.h"
#include <benchmark/benchmark.h>

using namespace lima;
using namespace lima::sim;

namespace {

SimulationOptions benchOptions(unsigned Procs) {
  SimulationOptions Options;
  Options.NumProcs = Procs;
  Options.RegionNames = {"bench"};
  return Options;
}

void BM_PingPong(benchmark::State &State) {
  const int Rounds = static_cast<int>(State.range(0));
  SimulationOptions Options = benchOptions(2);
  for (auto _ : State) {
    auto Trace = simulate(Options, [&](Comm &C) {
      RegionScope Scope(C, 0);
      for (int I = 0; I != Rounds; ++I) {
        if (C.rank() == 0) {
          C.send(1, 1024);
          C.recv(1);
        } else {
          C.recv(0);
          C.send(0, 1024);
        }
      }
    });
    benchmark::DoNotOptimize(cantFail(std::move(Trace)));
  }
  State.SetItemsProcessed(State.iterations() * Rounds * 2);
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(512);

void BM_AllReduceScaling(benchmark::State &State) {
  const unsigned Procs = static_cast<unsigned>(State.range(0));
  SimulationOptions Options = benchOptions(Procs);
  for (auto _ : State) {
    auto Trace = simulate(Options, [](Comm &C) {
      RegionScope Scope(C, 0);
      for (int I = 0; I != 16; ++I)
        C.allReduce(64);
    });
    benchmark::DoNotOptimize(cantFail(std::move(Trace)));
  }
  State.SetItemsProcessed(State.iterations() * 16 * Procs);
}
BENCHMARK(BM_AllReduceScaling)->Arg(4)->Arg(16)->Arg(64);

void BM_CfdEndToEnd(benchmark::State &State) {
  cfd::CfdConfig Config;
  Config.Procs = static_cast<unsigned>(State.range(0));
  Config.Iterations = 2;
  Config.Nx = 64;
  Config.RowsPerRank = 8;
  for (auto _ : State) {
    cfd::CfdResult Result = cantFail(cfd::runCfd(Config));
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_CfdEndToEnd)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
