//===- bench/phase_drift.cpp - temporal imbalance localization ------------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Extension experiment: per-instance (temporal) indices localize
// imbalance in *time*, which the paper's aggregate view cannot.  Two
// workloads with drifting load — the CFD code with a growing injection
// and the migrating-particle code — are analyzed per iteration; the
// series, their sparklines and trends are printed next to the aggregate
// index that would under-report the late iterations.
//
//===----------------------------------------------------------------------===//

#include "apps/cfd/Cfd.h"
#include "apps/gallery/ParticleExchange.h"
#include "core/PhaseAnalysis.h"
#include "core/TraceReduction.h"
#include "core/Views.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

namespace {

void report(raw_ostream &OS, const char *Name, const trace::Trace &Trace,
            size_t Region) {
  ExitOnError ExitOnErr("phase_drift: ");
  MeasurementCube Cube = ExitOnErr(reduceTrace(Trace));
  RegionView Aggregate = computeRegionView(Cube);
  PhaseResult Phases = ExitOnErr(analyzePhases(Trace));
  const PhaseSeries &Series = Phases.Series[Region];
  Trend T = linearTrend(Series.InstanceIndex);

  OS << Name << " / region '" << Cube.regionName(Region) << "':\n";
  OS << "  aggregate ID_C        = "
     << formatFixed(Aggregate.Index[Region], 5) << '\n';
  OS << "  per-instance indices  = ";
  for (double Index : Series.InstanceIndex)
    OS << formatFixed(Index, 3) << ' ';
  OS << '\n';
  OS << "  sparkline             = "
     << renderSparkline(Series.InstanceIndex) << '\n';
  OS << "  first -> last         = "
     << formatFixed(Series.InstanceIndex.front(), 5) << " -> "
     << formatFixed(Series.InstanceIndex.back(), 5) << '\n';
  OS << "  trend                 = "
     << formatFixed(T.RelativeSlope * 100.0, 1) << "% per instance\n\n";
}

} // namespace

int main() {
  ExitOnError ExitOnErr("phase_drift: ");
  raw_ostream &OS = outs();
  OS << "=== Temporal localization of drifting load imbalance ===\n\n";

  {
    cfd::CfdConfig Config;
    Config.Iterations = 10;
    Config.ImbalanceScale = 0.3;
    Config.ImbalanceDriftPerIteration = 0.35;
    report(OS, "CFD with drifting injection",
           ExitOnErr(cfd::runCfd(Config)).Trace, /*Region=*/0);
  }
  {
    gallery::ParticleExchangeConfig Config;
    Config.Steps = 14;
    Config.MigrationFraction = 0.08;
    report(OS, "migrating particle code",
           ExitOnErr(gallery::runParticleExchange(Config)), /*Region=*/0);
  }
  {
    cfd::CfdConfig Config;
    Config.Iterations = 10;
    report(OS, "CFD without drift (control)",
           ExitOnErr(cfd::runCfd(Config)).Trace, /*Region=*/0);
  }

  OS << "conclusion: the aggregate index sits between the first and last "
        "instances; the per-instance series pinpoints *when* the "
        "imbalance emerges, extending the paper's localization from "
        "code space into time.\n";
  OS.flush();
  return 0;
}
