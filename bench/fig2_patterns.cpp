//===- bench/fig2_patterns.cpp - regenerate the paper's Figure 2 ----------===//
//
// Part of LIMA. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 2: patterns of the times spent in point-to-point
// communications.  Only the four loops performing the activity appear;
// the paper notes the processors look "very balanced" here, which we
// quantify with the per-row relative range.
//
//===----------------------------------------------------------------------===//

#include "core/PaperDataset.h"
#include "core/PatternDiagram.h"
#include "stats/Descriptive.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/raw_ostream.h"

using namespace lima;
using namespace lima::core;

int main() {
  raw_ostream &OS = outs();
  OS << "=== Figure 2: point-to-point communication patterns ===\n\n";

  MeasurementCube Cube = paper::buildCube();
  PatternDiagram Diagram =
      computePatternDiagram(Cube, paper::PointToPoint);
  OS << renderPatternASCII(Diagram, Cube) << '\n';

  if (Error E = writeFile("fig2_point_to_point.ppm",
                          renderPatternPPM(Diagram)))
    errs() << "warning: " << E.message() << '\n';
  else
    OS << "image written to fig2_point_to_point.ppm\n";

  OS << "\nloops plotted: " << Diagram.Regions.size()
     << "  [paper: 4 — loops 3, 4, 5, 6]\n";
  OS << "relative spread (max-min)/mean per plotted loop:\n";
  for (size_t Row = 0; Row != Diagram.Regions.size(); ++Row) {
    size_t Region = Diagram.Regions[Row];
    std::vector<double> Times =
        Cube.processorSlice(Region, paper::PointToPoint);
    double Mean = stats::mean(Times);
    double Spread =
        Mean > 0.0 ? (stats::maximum(Times) - stats::minimum(Times)) / Mean
                   : 0.0;
    OS << "  loop " << Region + 1 << ": " << formatFixed(Spread, 3) << '\n';
  }
  OS.flush();
  return 0;
}
